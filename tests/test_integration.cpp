// End-to-end integration tests: small but real training runs asserting the
// paper's qualitative claims on synthetic data — joint imputation helps
// under missingness, imputation beats naive filling, and the full pipeline
// (generate -> mask -> normalize -> graphs -> train -> evaluate) holds
// together on both dataset families.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/imputers.hpp"
#include "baselines/neural.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "metrics/metrics.hpp"

namespace rihgcn {
namespace {

struct Pipeline {
  data::TrafficDataset ds;
  std::size_t train_end = 0;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
  std::unique_ptr<data::WindowSampler> sampler;
  data::SplitIndices split;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::vector<Matrix> holdout;

  static Pipeline pems(double missing_rate, std::uint64_t seed) {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 10;
    cfg.num_days = 6;
    cfg.steps_per_day = 96;
    cfg.seed = seed;
    Pipeline p;
    p.ds = data::generate_pems_like(cfg);
    Rng rng(seed + 1);
    data::inject_mcar(p.ds, missing_rate, rng);
    p.holdout = data::make_imputation_holdout(p.ds, 0.15, rng);
    p.finish(rng);
    return p;
  }

  static Pipeline stampede(std::uint64_t seed) {
    data::StampedeLikeConfig cfg;
    cfg.num_days = 6;
    cfg.steps_per_day = 96;
    cfg.seed = seed;
    Pipeline p;
    p.ds = data::generate_stampede_like(cfg);
    Rng rng(seed + 1);
    p.holdout = data::make_imputation_holdout(p.ds, 0.15, rng);
    p.finish(rng);
    return p;
  }

  void finish(Rng& rng) {
    train_end = ds.num_timesteps() * 7 / 10;
    normalizer = std::make_unique<data::ZScoreNormalizer>(ds, train_end);
    normalizer->normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 8, 4);
    split = sampler->split();
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 3;
    graphs = std::make_unique<core::HeterogeneousGraphs>(ds, train_end, gcfg,
                                                         rng);
  }

  core::TrainConfig quick_train() const {
    core::TrainConfig cfg;
    cfg.max_epochs = 5;
    cfg.max_train_windows = 100;
    cfg.max_val_windows = 40;
    return cfg;
  }

  core::RihgcnConfig model_config() const {
    core::RihgcnConfig mc;
    mc.lookback = 8;
    mc.horizon = 4;
    mc.gcn_dim = 8;
    mc.lstm_dim = 12;
    return mc;
  }
};

TEST(Integration, TrainingImprovesRihgcnOnPems) {
  Pipeline p = Pipeline::pems(0.4, 31);
  core::RihgcnModel model(*p.graphs, p.ds.num_nodes(), p.ds.num_features(),
                          p.model_config());
  const core::EvalResult before = core::evaluate_prediction(
      model, *p.sampler, p.split.test, nullptr, 0, 40);
  core::train_model(model, *p.sampler, p.split, p.quick_train());
  const core::EvalResult after = core::evaluate_prediction(
      model, *p.sampler, p.split.test, nullptr, 0, 40);
  EXPECT_LT(after.mae, before.mae);
  EXPECT_LT(after.rmse, before.rmse);
}

TEST(Integration, RihgcnImputationBeatsMeanFill) {
  // Paper RQ2: the learned recurrent imputation must beat naive filling.
  Pipeline p = Pipeline::pems(0.5, 33);
  core::RihgcnModel model(*p.graphs, p.ds.num_nodes(), p.ds.num_features(),
                          p.model_config());
  core::train_model(model, *p.sampler, p.split, p.quick_train());
  const core::EvalResult learned = core::evaluate_imputation(
      model, *p.sampler, p.split.test, p.holdout, p.normalizer.get(), 30);

  // Mean fill in normalized space = 0; evaluate the same held-out cells.
  metrics::ErrorAccumulator zero_fill;
  std::size_t used = 0;
  for (const std::size_t idx : p.split.test) {
    if (used++ >= 30) break;
    const data::Window w = p.sampler->make_window(idx);
    for (std::size_t t = 0; t < w.x_truth.size(); ++t) {
      Matrix zeros(w.x_truth[t].rows(), w.x_truth[t].cols());
      zero_fill.add(p.normalizer->denormalize(zeros),
                    p.normalizer->denormalize(w.x_truth[t]),
                    p.holdout[w.start + t]);
    }
  }
  ASSERT_FALSE(zero_fill.empty());
  EXPECT_LT(learned.mae, zero_fill.mae());
}

TEST(Integration, RihgcnCompetitiveWithMeanFilledBaselineAtHighMissingness) {
  // Paper RQ1 at 60% missing: RIHGCN's imputation-aware training beats the
  // mean-filled GCN-LSTM at paper scale (see bench_table1_missing_rate).
  // At unit-test scale (10 nodes, ~100 windows, 8 epochs) the margin is
  // seed noise, so this test only pins down "same ballpark" — a regression
  // that broke the imputation path would blow this bound immediately.
  Pipeline p = Pipeline::pems(0.6, 35);
  core::RihgcnModel rihgcn(*p.graphs, p.ds.num_nodes(), p.ds.num_features(),
                           p.model_config());
  baselines::NeuralBaselineConfig bcfg;
  bcfg.lookback = 8;
  bcfg.horizon = 4;
  bcfg.hidden = 12;
  baselines::GcnLstmModel baseline(p.graphs->geographic().scaled_laplacian(),
                                   p.ds.num_features(), bcfg);
  core::TrainConfig tcfg = p.quick_train();
  tcfg.max_epochs = 8;  // RIHGCN has ~4x the parameters; give both a fair run
  core::train_model(rihgcn, *p.sampler, p.split, tcfg);
  core::train_model(baseline, *p.sampler, p.split, tcfg);
  const core::EvalResult r_rihgcn = core::evaluate_prediction(
      rihgcn, *p.sampler, p.split.test, p.normalizer.get(), 0, 50);
  const core::EvalResult r_base = core::evaluate_prediction(
      baseline, *p.sampler, p.split.test, p.normalizer.get(), 0, 50);
  EXPECT_LT(r_rihgcn.mae, r_base.mae * 1.5);
  EXPECT_LT(r_base.mae, r_rihgcn.mae * 1.5);
}

TEST(Integration, StampedePipelineEndToEnd) {
  Pipeline p = Pipeline::stampede(37);
  EXPECT_GT(p.ds.missing_rate(), 0.5);
  core::RihgcnConfig mc = p.model_config();
  core::RihgcnModel model(*p.graphs, p.ds.num_nodes(), p.ds.num_features(),
                          mc);
  const core::TrainReport report =
      core::train_model(model, *p.sampler, p.split, p.quick_train());
  EXPECT_GT(report.epochs_run, 0u);
  const core::EvalResult r = core::evaluate_prediction(
      model, *p.sampler, p.split.test, p.normalizer.get(), 0, 40);
  EXPECT_GT(r.mae, 0.0);
  EXPECT_TRUE(std::isfinite(r.rmse));
  // Sanity: predictions in seconds should be in a plausible range once
  // denormalized (the generator produces ~100-600 s travel times).
  const data::Window w = p.sampler->make_window(p.split.test.front());
  const Matrix pred = model.predict(w);
  const double denormed = p.normalizer->denormalize(pred(0, 0), 0);
  EXPECT_GT(denormed, -200.0);
  EXPECT_LT(denormed, 2000.0);
}

TEST(Integration, ClassicalImputersWorkOnStampedeData) {
  Pipeline p = Pipeline::stampede(39);
  const baselines::LastObservedImputer last;
  std::vector<Matrix> obs;
  obs.reserve(p.ds.num_timesteps());
  for (std::size_t t = 0; t < p.ds.num_timesteps(); ++t) {
    obs.push_back(p.ds.observed(t));
  }
  const auto filled = last.impute(obs, p.ds.mask);
  metrics::ErrorAccumulator acc;
  for (std::size_t t = 0; t < filled.size(); ++t) {
    acc.add(filled[t], p.ds.truth[t], p.holdout[t]);
  }
  ASSERT_FALSE(acc.empty());
  // Last-observed on quasi-periodic travel times: errors bounded (normalized
  // units; ~1 std would be uninformative).
  EXPECT_LT(acc.mae(), 1.5);
}

TEST(Integration, HigherMissingnessHurtsPrediction) {
  // Monotonicity sanity behind Table I's row trend.
  auto run = [](double rate) {
    Pipeline p = Pipeline::pems(rate, 41);
    baselines::NeuralBaselineConfig bcfg;
    bcfg.lookback = 8;
    bcfg.horizon = 4;
    bcfg.hidden = 10;
    baselines::FcLstmIModel model(p.ds.num_features(), bcfg);
    core::train_model(model, *p.sampler, p.split, p.quick_train());
    return core::evaluate_prediction(model, *p.sampler, p.split.test,
                                     nullptr, 0, 40)
        .mae;
  };
  const double low = run(0.2);
  const double high = run(0.8);
  EXPECT_LT(low, high);
}

}  // namespace
}  // namespace rihgcn
