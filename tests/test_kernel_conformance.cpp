// Kernel-conformance harness for the runtime-dispatched SIMD layer
// (tensor/simd.hpp, DESIGN.md §12). Property-based: every suite sweeps
// randomized shapes/densities/seeds, including empty and tail-only sizes,
// and compares whole buffers — not spot values.
//
// The contracts held here:
//  * BITWISE (double): every SIMD kernel == the scalar reference, element
//    for element, bit for bit. Checked at the raw-buffer level (the kernel
//    tables from kernels_for) AND through the Matrix/CsrMatrix/Tape layers
//    at 1/2/4/8 threads, so ISA choice can never perturb training results.
//  * BITWISE (sparse vs dense): spmm(csr(A), B) == matmul(A, B) and
//    spmm_t(csr(A), B) == matmul_at(A, B) with tol = 0 CSR, under BOTH ISAs.
//  * BITWISE (fused vs unfused): the fused LSTM/GRU tape cells match the
//    elementary-op chains under both ISAs (extends test_tape_arena.cpp's
//    §10 parity to the SIMD layer).
//  * ULP-BOUNDED (float): the f32 serving kernels (tensor/fmatrix.hpp, FMA
//    allowed) stay within (k+2)·eps_f32·Σ|a||b| of the f64 reference per
//    element.
//  * RIHGCN_SIMD parsing: strict — misspelled or unsupported values throw,
//    no silent fallback.
//
// All KernelConformance.* tests also run under TSan (tools/run_tsan.sh).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "autodiff/tape.hpp"
#include "nn/layers.hpp"
#include "tensor/csr.hpp"
#include "tensor/fmatrix.hpp"
#include "tensor/matrix.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"
#include "tensor/simd.hpp"

namespace rihgcn {
namespace {

using ad::Parameter;
using ad::Tape;
using ad::Var;

// Pins ISA + pool width + forced-threaded tuning for one scope; restores
// auto-dispatch and defaults on destruction so suites can't leak state into
// each other. (On hosts with fewer cores than `threads` the global pool
// clamps to the hardware — the sweep then still checks what it can; the §8
// contract makes the results identical either way.)
class SimdBackendGuard {
 public:
  SimdBackendGuard(simd::Isa isa, std::size_t threads) {
    simd::force_isa(isa);
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ParallelTuning::matmul_row_grain = 2;
    ThreadPool::set_global_threads(threads);
  }
  ~SimdBackendGuard() {
    simd::reset_isa();
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  SimdBackendGuard(const SimdBackendGuard&) = delete;
  SimdBackendGuard& operator=(const SimdBackendGuard&) = delete;
};

bool avx2_available() { return simd::isa_supported(simd::Isa::kAvx2); }

// Buffer sizes that exercise every code shape in a 4-wide kernel: empty,
// tail-only, one full vector, vector+tail, and a large multi-chunk run.
const std::size_t kLens[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 33, 257};

std::vector<double> random_buf(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, 2.0);
  return v;
}

Matrix randn(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_matrix(r, c, 1.0);
}

// Dense matrix with ~`density` nonzeros (exact zeros elsewhere) so
// CsrMatrix::from_dense(_, 0.0) drops real structure.
Matrix random_sparse(std::size_t r, std::size_t c, double density, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (rng.bernoulli(density)) m(i, j) = rng.normal(0.0, 1.0);
    }
  }
  return m;
}

// ---- Raw kernel-table parity: SIMD vs scalar, bitwise ----------------------

// Runs `op` once against each table on identical inputs and requires
// bit-identical output buffers (vector<double> == compares representations
// for finite values; inputs are finite by construction).
template <typename Op>
void expect_table_parity(const Op& op) {
  const simd::Kernels& scalar = simd::kernels_for(simd::Isa::kScalar);
  const simd::Kernels& vec = simd::kernels_for(simd::Isa::kAvx2);
  op(scalar, vec);
}

TEST(KernelConformance, ElementwiseSimdMatchesScalarBitwise) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host";
  Rng rng(41);
  for (std::size_t len : kLens) {
    for (int trial = 0; trial < 3; ++trial) {
      const std::vector<double> a = random_buf(rng, len);
      const std::vector<double> b = random_buf(rng, len);
      const std::vector<double> c = random_buf(rng, len);
      const std::vector<double> d = random_buf(rng, len);
      const double s = rng.normal(0.0, 3.0);
      expect_table_parity([&](const simd::Kernels& ref,
                              const simd::Kernels& alt) {
        const auto check2 = [&](auto fn, const char* name) {
          std::vector<double> y0 = a, y1 = a;
          fn(ref, y0.data());
          fn(alt, y1.data());
          EXPECT_EQ(y0, y1) << name << " len=" << len;
        };
        check2([&](const simd::Kernels& k, double* y) { k.add(y, b.data(), len); },
               "add");
        check2([&](const simd::Kernels& k, double* y) { k.sub(y, b.data(), len); },
               "sub");
        check2([&](const simd::Kernels& k, double* y) { k.mul(y, b.data(), len); },
               "mul");
        check2([&](const simd::Kernels& k, double* y) { k.scale(y, s, len); },
               "scale");
        check2([&](const simd::Kernels& k, double* y) { k.axpy(y, s, b.data(), len); },
               "axpy");
        check2(
            [&](const simd::Kernels& k, double* y) { k.fmadd(y, b.data(), c.data(), len); },
            "fmadd");
        const auto check_out = [&](auto fn, const char* name) {
          std::vector<double> y0(len, -7.0), y1(len, -7.0);
          fn(ref, y0.data());
          fn(alt, y1.data());
          EXPECT_EQ(y0, y1) << name << " len=" << len;
        };
        check_out([&](const simd::Kernels& k,
                      double* y) { k.add_into(y, a.data(), b.data(), len); },
                  "add_into");
        check_out([&](const simd::Kernels& k,
                      double* y) { k.sub_into(y, a.data(), b.data(), len); },
                  "sub_into");
        check_out([&](const simd::Kernels& k,
                      double* y) { k.mul_into(y, a.data(), b.data(), len); },
                  "mul_into");
        check_out(
            [&](const simd::Kernels& k, double* y) {
              k.mul2_add(y, a.data(), b.data(), c.data(), d.data(), len);
            },
            "mul2_add");
      });
    }
  }
}

TEST(KernelConformance, MatmulRowsSimdMatchesScalarBitwise) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host";
  Rng rng(43);
  for (int trial = 0; trial < 12; ++trial) {
    // Shapes hit the 4-row blocking, odd tails and degenerate dims.
    const std::size_t n = rng.uniform_index(13);   // 0..12 rows
    const std::size_t k = rng.uniform_index(17);   // 0..16 inner
    const std::size_t m = rng.uniform_index(19);   // 0..18 cols
    const std::vector<double> a = random_buf(rng, n * k);
    const std::vector<double> b = random_buf(rng, k * m);
    // Nonzero seed in C: the kernel accumulates (C += A·B).
    const std::vector<double> seed = random_buf(rng, n * m);
    expect_table_parity(
        [&](const simd::Kernels& ref, const simd::Kernels& alt) {
          std::vector<double> c0 = seed, c1 = seed;
          ref.matmul_rows(a.data(), b.data(), c0.data(), k, m, 0, n);
          alt.matmul_rows(a.data(), b.data(), c1.data(), k, m, 0, n);
          EXPECT_EQ(c0, c1) << "n=" << n << " k=" << k << " m=" << m;
          // Partial row ranges must agree too (the threaded kernels hand the
          // table arbitrary [i0, i1) chunks).
          if (n >= 2) {
            std::vector<double> p0 = seed, p1 = seed;
            ref.matmul_rows(a.data(), b.data(), p0.data(), k, m, 1, n - 1);
            alt.matmul_rows(a.data(), b.data(), p1.data(), k, m, 1, n - 1);
            EXPECT_EQ(p0, p1) << "partial n=" << n << " k=" << k << " m=" << m;
          }
        });
  }
}

TEST(KernelConformance, SpmmRowsSimdMatchesScalarBitwise) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host";
  Rng rng(47);
  for (double density : {0.0, 0.1, 0.5, 1.0}) {
    for (int trial = 0; trial < 4; ++trial) {
      const std::size_t n = 1 + rng.uniform_index(12);
      const std::size_t m = rng.uniform_index(19);  // 0..18, tails included
      const Matrix dense = random_sparse(n, n, density, rng);
      const CsrMatrix sp = CsrMatrix::from_dense(dense, 0.0);
      const std::vector<double> b = random_buf(rng, n * m);
      const std::vector<double> seed = random_buf(rng, n * m);
      expect_table_parity(
          [&](const simd::Kernels& ref, const simd::Kernels& alt) {
            std::vector<double> c0 = seed, c1 = seed;
            ref.spmm_rows(sp.row_ptr().data(), sp.col_idx().data(),
                          sp.values().data(), b.data(), c0.data(), m, 0, n);
            alt.spmm_rows(sp.row_ptr().data(), sp.col_idx().data(),
                          sp.values().data(), b.data(), c1.data(), m, 0, n);
            EXPECT_EQ(c0, c1) << "n=" << n << " m=" << m << " d=" << density;
          });
    }
  }
}

// ---- Matrix-layer parity across ISAs and thread counts ---------------------

TEST(KernelConformance, DenseOpsIsaInvariantAcrossThreads) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host";
  const Matrix a = randn(9, 7, 51);
  const Matrix b = randn(7, 11, 52);
  const Matrix e1 = randn(9, 7, 53);

  // Reference: scalar ISA, serial pool.
  Matrix ref_mm, ref_at, ref_sum, ref_had;
  {
    SimdBackendGuard guard(simd::Isa::kScalar, 1);
    ref_mm = matmul(a, b);
    ref_at = matmul_at(a, e1);
    ref_sum = a + e1;
    ref_had = hadamard(a, e1);
    // Scalar table through the threaded path == seed naive kernel.
    Matrix naive(a.rows(), b.cols());
    detail::matmul_naive(a, b, naive);
    EXPECT_EQ(ref_mm, naive);
  }
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      SimdBackendGuard guard(isa, threads);
      EXPECT_EQ(matmul(a, b), ref_mm)
          << simd::isa_name(isa) << " @" << threads << "T";
      EXPECT_EQ(matmul_at(a, e1), ref_at)
          << simd::isa_name(isa) << " @" << threads << "T";
      EXPECT_EQ(a + e1, ref_sum) << simd::isa_name(isa) << " @" << threads;
      EXPECT_EQ(hadamard(a, e1), ref_had)
          << simd::isa_name(isa) << " @" << threads << "T";
      Matrix scaled = a;
      scaled *= 1.7;
      Matrix ref_scaled = a;
      {
        // *= through whichever path; compare against a plain serial loop.
        for (std::size_t i = 0; i < ref_scaled.rows(); ++i)
          for (std::size_t j = 0; j < ref_scaled.cols(); ++j)
            ref_scaled(i, j) = ref_scaled(i, j) * 1.7;
      }
      EXPECT_EQ(scaled, ref_scaled) << simd::isa_name(isa) << " @" << threads;
    }
  }
}

TEST(KernelConformance, SparseMatchesDenseBitwiseUnderBothIsas) {
  Rng shape_rng(61);
  for (double density : {0.05, 0.3, 0.9}) {
    const std::size_t n = 8 + shape_rng.uniform_index(9);   // 8..16
    const std::size_t m = 3 + shape_rng.uniform_index(6);   // 3..8
    const Matrix a = random_sparse(n, n, density, shape_rng);
    const Matrix b = randn(n, m, 71 + static_cast<std::uint64_t>(density * 100));
    const CsrMatrix sp = CsrMatrix::from_dense(a, /*tol=*/0.0);
    for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
      if (!simd::isa_supported(isa)) continue;
      for (std::size_t threads : {1u, 2u, 4u}) {
        SimdBackendGuard guard(isa, threads);
        EXPECT_EQ(spmm(sp, b), matmul(a, b))
            << "density=" << density << " " << simd::isa_name(isa) << " @"
            << threads << "T";
        EXPECT_EQ(spmm_t(sp, b), matmul_at(a, b))
            << "density=" << density << " " << simd::isa_name(isa) << " @"
            << threads << "T";
      }
    }
  }
}

// ---- Fused tape cells: ISA must not perturb values or gradients ------------

struct CellRun {
  std::vector<Matrix> h;
  double loss = 0.0;
  std::vector<Matrix> grads;
};

template <typename Cell>
CellRun run_cell(Cell& cell, bool fused, const std::vector<Matrix>& xs) {
  cell.set_fused(fused);
  for (Parameter* p : cell.parameters()) p->zero_grad();
  Tape tape;
  typename Cell::State state = cell.initial_state(tape, xs.front().rows());
  std::vector<Var> hs;
  for (const Matrix& x : xs) {
    state = cell.step(tape, tape.constant(x), state);
    hs.push_back(state.h);
  }
  Var loss = tape.mean_all(tape.concat_cols_many(hs));
  tape.backward(loss);
  CellRun run;
  for (Var h : hs) run.h.push_back(tape.value(h));
  run.loss = tape.value(loss)(0, 0);
  for (Parameter* p : cell.parameters()) run.grads.push_back(p->grad());
  return run;
}

void expect_same_run(const CellRun& a, const CellRun& b) {
  ASSERT_EQ(a.h.size(), b.h.size());
  for (std::size_t t = 0; t < a.h.size(); ++t) EXPECT_EQ(a.h[t], b.h[t]);
  EXPECT_EQ(a.loss, b.loss);  // bitwise: no tolerance
  ASSERT_EQ(a.grads.size(), b.grads.size());
  for (std::size_t i = 0; i < a.grads.size(); ++i) {
    EXPECT_EQ(a.grads[i], b.grads[i]);
  }
}

TEST(KernelConformance, FusedLstmIsaAndThreadInvariant) {
  Rng rng(81);
  nn::LstmCell cell(4, 3, rng);
  std::vector<Matrix> xs;
  for (std::size_t t = 0; t < 3; ++t) xs.push_back(randn(5, 4, 300 + t));
  CellRun reference;
  bool have_reference = false;
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    if (!simd::isa_supported(isa)) continue;
    for (std::size_t threads : {1u, 2u, 4u}) {
      SimdBackendGuard guard(isa, threads);
      const CellRun fused = run_cell(cell, /*fused=*/true, xs);
      const CellRun unfused = run_cell(cell, /*fused=*/false, xs);
      expect_same_run(fused, unfused);
      if (!have_reference) {
        reference = fused;
        have_reference = true;
      } else {
        expect_same_run(reference, fused);
      }
    }
  }
}

TEST(KernelConformance, FusedGruIsaAndThreadInvariant) {
  Rng rng(82);
  nn::GruCell cell(4, 3, rng);
  std::vector<Matrix> xs;
  for (std::size_t t = 0; t < 3; ++t) xs.push_back(randn(5, 4, 400 + t));
  CellRun reference;
  bool have_reference = false;
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    if (!simd::isa_supported(isa)) continue;
    for (std::size_t threads : {1u, 2u, 4u}) {
      SimdBackendGuard guard(isa, threads);
      const CellRun fused = run_cell(cell, /*fused=*/true, xs);
      const CellRun unfused = run_cell(cell, /*fused=*/false, xs);
      expect_same_run(fused, unfused);
      if (!have_reference) {
        reference = fused;
        have_reference = true;
      } else {
        expect_same_run(reference, fused);
      }
    }
  }
}

// ---- Float serving kernels: ULP-bounded against the f64 reference ----------

// Per-element forward-error bound for a length-k f32 dot product with FMA:
// each of the <= k multiplies and k adds (FMA fuses pairs but we bound
// conservatively) contributes <= eps/2 relative to the running magnitude,
// which is itself bounded by Σ|a||b|. (k+2)·eps·Σ|a||b| leaves slack for the
// final rounding and the f32 representation of the operands.
void expect_f32_within_bound(const FMatrix& got, const Matrix& ref,
                             const Matrix& abs_bound, std::size_t k,
                             const char* what) {
  constexpr double eps = std::numeric_limits<float>::epsilon();
  const double factor = static_cast<double>(k + 2) * eps;
  ASSERT_EQ(got.rows(), ref.rows()) << what;
  ASSERT_EQ(got.cols(), ref.cols()) << what;
  for (std::size_t i = 0; i < ref.rows(); ++i) {
    for (std::size_t j = 0; j < ref.cols(); ++j) {
      const double tol = factor * abs_bound(i, j) +
                         std::numeric_limits<float>::denorm_min();
      EXPECT_NEAR(static_cast<double>(got(i, j)), ref(i, j), tol)
          << what << " at (" << i << "," << j << ")";
    }
  }
}

Matrix abs_matrix(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = std::fabs(m(i, j));
  return out;
}

TEST(KernelConformance, FloatMatmulWithinUlpBoundOfDouble) {
  Rng rng(91);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(12);
    const std::size_t k = 1 + rng.uniform_index(40);
    const std::size_t m = 1 + rng.uniform_index(12);
    const Matrix a64 = randn(n, k, 500 + static_cast<std::uint64_t>(trial));
    const Matrix b64 = randn(k, m, 600 + static_cast<std::uint64_t>(trial));
    const FMatrix a32 = FMatrix::from(a64);
    const FMatrix b32 = FMatrix::from(b64);
    // Reference from the NARROWED operands (widened back exactly), so the
    // bound measures the kernel's accumulation error, not conversion error.
    const Matrix ar = a32.to_double();
    const Matrix br = b32.to_double();
    const Matrix ref = matmul(ar, br);
    const Matrix bound = matmul(abs_matrix(ar), abs_matrix(br));
    for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
      if (!simd::isa_supported(isa)) continue;
      SimdBackendGuard guard(isa, 2);
      expect_f32_within_bound(fmatmul(a32, b32), ref, bound, k,
                              simd::isa_name(isa));
    }
  }
}

TEST(KernelConformance, FloatSpmmWithinUlpBoundOfDouble) {
  Rng rng(93);
  for (double density : {0.1, 0.5}) {
    const std::size_t n = 8 + rng.uniform_index(9);
    const std::size_t m = 2 + rng.uniform_index(7);
    const Matrix a64 = random_sparse(n, n, density, rng);
    const Matrix b64 = randn(n, m, 700 + static_cast<std::uint64_t>(density * 10));
    const CsrMatrix sp64 = CsrMatrix::from_dense(a64, 0.0);
    const FCsrMatrix sp32 = FCsrMatrix::from(sp64);
    const FMatrix b32 = FMatrix::from(b64);
    const Matrix ar = FMatrix::from(a64).to_double();
    const Matrix br = b32.to_double();
    const Matrix ref = matmul(ar, br);
    const Matrix bound = matmul(abs_matrix(ar), abs_matrix(br));
    for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
      if (!simd::isa_supported(isa)) continue;
      SimdBackendGuard guard(isa, 2);
      expect_f32_within_bound(fspmm(sp32, b32), ref, bound, n,
                              simd::isa_name(isa));
    }
  }
}

TEST(KernelConformance, FloatMatmulThreadCountInvariant) {
  // The f32 kernels follow the same fixed-chunk rule as the double ones, so
  // while they are only ULP-close to f64, they are BITWISE identical to
  // themselves across thread counts.
  const Matrix a64 = randn(10, 18, 801);
  const Matrix b64 = randn(18, 9, 802);
  const FMatrix a32 = FMatrix::from(a64);
  const FMatrix b32 = FMatrix::from(b64);
  FMatrix ref;
  {
    SimdBackendGuard guard(simd::active_isa(), 1);
    ref = fmatmul(a32, b32);
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    SimdBackendGuard guard(simd::active_isa(), threads);
    const FMatrix out = fmatmul(a32, b32);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t i = 0; i < out.rows(); ++i)
      for (std::size_t j = 0; j < out.cols(); ++j)
        EXPECT_EQ(out(i, j), ref(i, j)) << "@" << threads << "T";
  }
}

// ---- RIHGCN_SIMD parsing ----------------------------------------------------

// Same env-guard idiom as test_parallel.cpp.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(KernelConformance, SimdEnvUnsetMeansAutoDetect) {
  EnvVarGuard env("RIHGCN_SIMD", nullptr);
  EXPECT_FALSE(simd::isa_from_env().has_value());
}

TEST(KernelConformance, SimdEnvAcceptsKnownIsas) {
  {
    EnvVarGuard env("RIHGCN_SIMD", "scalar");
    const auto isa = simd::isa_from_env();
    ASSERT_TRUE(isa.has_value());
    EXPECT_EQ(*isa, simd::Isa::kScalar);
  }
  {
    EnvVarGuard env("RIHGCN_SIMD", "avx2");
    if (avx2_available()) {
      const auto isa = simd::isa_from_env();
      ASSERT_TRUE(isa.has_value());
      EXPECT_EQ(*isa, simd::Isa::kAvx2);
    } else {
      // Requesting an ISA this host can't run must fail loudly.
      EXPECT_THROW((void)simd::isa_from_env(), std::runtime_error);
    }
  }
}

TEST(KernelConformance, SimdEnvRejectsGarbage) {
  for (const char* bad : {"AVX2", "sse", "scalar ", "1", "on"}) {
    EnvVarGuard env("RIHGCN_SIMD", bad);
    EXPECT_THROW((void)simd::isa_from_env(), std::runtime_error)
        << "'" << bad << "'";
  }
}

TEST(KernelConformance, ForceIsaIsVisibleAndRevertible) {
  simd::force_isa(simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_EQ(simd::active_kernels().add,
            simd::kernels_for(simd::Isa::kScalar).add);
  simd::reset_isa();
  // After reset the dispatcher re-resolves; whatever it picks must be a
  // supported ISA with a fully populated table.
  const simd::Isa isa = simd::active_isa();
  EXPECT_TRUE(simd::isa_supported(isa));
  EXPECT_NE(simd::active_kernels().matmul_rows, nullptr);
}

}  // namespace
}  // namespace rihgcn
