// The city-scale k-NN graph pipeline (DESIGN.md §13):
//
//  * DTW lower bounds really lower-bound DTW (LB_Kim, LB_Keogh) and
//    early-abandoned DTW is exact when it completes.
//  * knn_series_graph with pruning on is BITWISE identical to the exact
//    full scan, at 1 and 4 threads, and actually prunes work.
//  * The spatial k-NN builders (knn_from_distances / knn_from_coords) agree
//    bitwise with each other and with the temporal scan on shared inputs.
//  * The CSR Laplacian pipeline (gaussian_knn_adjacency →
//    normalized_laplacian_csr → largest_eigenvalue → scaled_laplacian_csr)
//    is bitwise equal to the dense pipeline + from_dense on the same
//    adjacency.
//  * CsrMatrix::from_parts validation and submatrix extraction.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"
#include "timeseries/distance.hpp"

namespace rihgcn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pin the pool width and force threaded dispatch on tiny inputs (same idiom
// as test_parallel.cpp); restore defaults on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(std::size_t threads) {
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ThreadPool::set_global_threads(threads);
  }
  ~BackendGuard() {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

// N node series with diurnal structure in a few phase clusters, so k-NN has
// genuinely close neighbours (pruning bites) plus noise.
Matrix clustered_series(std::size_t n, std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, len);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = static_cast<double>(i % 4) * 1.3;
    const double amp = 1.0 + 0.25 * static_cast<double>(i % 3);
    for (std::size_t t = 0; t < len; ++t) {
      s(i, t) = amp * std::sin(0.4 * static_cast<double>(t) + phase) +
                0.15 * rng.normal();
    }
  }
  return s;
}

std::span<const double> row_span(const Matrix& m, std::size_t r) {
  return {m.data() + r * m.cols(), m.cols()};
}

// ---- Lower bounds ---------------------------------------------------------

TEST(DtwBounds, LbKimLowerBoundsDtw) {
  const Matrix s = clustered_series(12, 20, 11);
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = i + 1; j < s.rows(); ++j) {
      const double d = ts::dtw(row_span(s, i), row_span(s, j));
      EXPECT_LE(ts::lb_kim(row_span(s, i), row_span(s, j)), d);
    }
  }
}

TEST(DtwBounds, LbKeoghLowerBoundsDtw) {
  const Matrix s = clustered_series(10, 24, 12);
  for (const std::ptrdiff_t band : {std::ptrdiff_t{-1}, std::ptrdiff_t{3}}) {
    std::vector<ts::KeoghEnvelope> envs;
    for (std::size_t j = 0; j < s.rows(); ++j) {
      envs.push_back(ts::keogh_envelope(row_span(s, j), band));
    }
    for (std::size_t i = 0; i < s.rows(); ++i) {
      for (std::size_t j = 0; j < s.rows(); ++j) {
        if (i == j) continue;
        const double d = ts::dtw(row_span(s, i), row_span(s, j), band);
        EXPECT_LE(ts::lb_keogh(row_span(s, i), envs[j]), d)
            << "band " << band << " pair " << i << "," << j;
      }
    }
  }
}

TEST(DtwBounds, EarlyAbandonIsExactWhenItCompletes) {
  const Matrix s = clustered_series(8, 18, 13);
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = 0; j < s.rows(); ++j) {
      if (i == j) continue;
      const double exact = ts::dtw(row_span(s, i), row_span(s, j), 4);
      // Generous cutoff: must complete and reproduce dtw() bit-for-bit.
      EXPECT_EQ(ts::dtw_early_abandoned(row_span(s, i), row_span(s, j), 4,
                                        exact * 2.0 + 1.0),
                exact);
      // Tight cutoff: either abandoned (+inf) or still the exact bits.
      const double tight =
          ts::dtw_early_abandoned(row_span(s, i), row_span(s, j), 4, exact * 0.5);
      EXPECT_TRUE(tight == kInf || tight == exact);
    }
  }
}

// ---- Pruned scan parity ---------------------------------------------------

TEST(KnnSeriesGraph, PrunedMatchesExactBitwise) {
  const Matrix s = clustered_series(48, 24, 14);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    BackendGuard guard(threads);
    ts::KnnOptions exact_opts;
    exact_opts.k = 6;
    exact_opts.band = 4;
    exact_opts.prune = false;
    ts::KnnOptions pruned_opts = exact_opts;
    pruned_opts.prune = true;
    ts::KnnStats st;
    const ts::NeighborList a = ts::knn_series_graph(s, exact_opts);
    const ts::NeighborList b = ts::knn_series_graph(s, pruned_opts, &st);
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_EQ(a.dist, b.dist);  // bitwise: == on doubles
    // The pruning actually did something on structured data.
    EXPECT_GT(st.lb_kim_pruned + st.lb_keogh_pruned + st.dtw_abandoned, 0u);
    EXPECT_LT(st.dtw_started, st.pairs);
  }
}

TEST(KnnSeriesGraph, ThreadCountInvariant) {
  const Matrix s = clustered_series(30, 20, 15);
  ts::KnnOptions opts;
  opts.k = 5;
  opts.band = 3;
  ts::NeighborList ref;
  {
    BackendGuard guard(1);
    ref = ts::knn_series_graph(s, opts);
  }
  {
    BackendGuard guard(4);
    const ts::NeighborList got = ts::knn_series_graph(s, opts);
    EXPECT_EQ(ref.idx, got.idx);
    EXPECT_EQ(ref.dist, got.dist);
  }
}

TEST(KnnSeriesGraph, MatchesDenseDistanceMatrixPath) {
  // Unbanded exact scan == k-NN sparsification of the dense DTW matrix.
  const Matrix s = clustered_series(20, 16, 16);
  ts::KnnOptions opts;
  opts.k = 4;
  opts.band = -1;
  opts.prune = false;
  const ts::NeighborList direct = ts::knn_series_graph(s, opts);
  const Matrix dense = ts::pairwise_series_distance(s, ts::SeriesDistance::kDtw);
  const ts::NeighborList via_dense = graph::knn_from_distances(dense, 4);
  EXPECT_EQ(direct.offsets, via_dense.offsets);
  EXPECT_EQ(direct.idx, via_dense.idx);
  EXPECT_EQ(direct.dist, via_dense.dist);
}

// ---- Spatial k-NN ---------------------------------------------------------

TEST(SpatialKnn, CoordsPathMatchesDistanceMatrixPath) {
  Rng rng(17);
  const Matrix coords = rng.normal_matrix(40, 2, 3.0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    BackendGuard guard(threads);
    const ts::NeighborList direct = graph::knn_from_coords(coords, 6);
    const ts::NeighborList via_dense =
        graph::knn_from_distances(graph::pairwise_euclidean(coords), 6);
    EXPECT_EQ(direct.idx, via_dense.idx);
    EXPECT_EQ(direct.dist, via_dense.dist);
  }
}

TEST(SpatialKnn, TiesBreakTowardSmallerIndex) {
  // All off-diagonal distances equal: row i must keep the k smallest
  // indices != i, in ascending order.
  const std::size_t n = 7;
  Matrix d(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = 0.0;
  const ts::NeighborList knn = graph::knn_from_distances(d, 3);
  ASSERT_EQ(knn.k, 3u);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> expect;
    for (std::size_t j = 0; expect.size() < 3; ++j) {
      if (j != i) expect.push_back(j);
    }
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(knn.idx[knn.offsets[i] + r], expect[r]) << "row " << i;
    }
  }
}

TEST(SpatialKnn, KClampedToNMinusOne) {
  Rng rng(18);
  const Matrix coords = rng.normal_matrix(5, 2, 1.0);
  const ts::NeighborList knn = graph::knn_from_coords(coords, 100);
  EXPECT_EQ(knn.k, 4u);
  EXPECT_EQ(knn.idx.size(), 20u);
}

// ---- CSR Laplacian pipeline parity ---------------------------------------

TEST(CsrGraphPipeline, MatchesDensePipelineBitwise) {
  Rng rng(19);
  const Matrix coords = rng.normal_matrix(32, 2, 4.0);
  const ts::NeighborList knn = graph::knn_from_coords(coords, 5);
  graph::AdjacencyOptions opts;
  opts.epsilon = 0.05;
  const CsrMatrix adj = graph::gaussian_knn_adjacency(knn, opts);
  const Matrix adj_dense = adj.to_dense();

  // Degrees.
  EXPECT_EQ(graph::degree_vector(adj), graph::degree_vector(adj_dense));

  // Normalized Laplacian.
  const CsrMatrix lap = graph::normalized_laplacian_csr(adj);
  const CsrMatrix lap_ref =
      CsrMatrix::from_dense(graph::normalized_laplacian(adj_dense));
  EXPECT_EQ(lap.row_ptr(), lap_ref.row_ptr());
  EXPECT_EQ(lap.col_idx(), lap_ref.col_idx());
  EXPECT_EQ(lap.values(), lap_ref.values());

  // Largest eigenvalue: identical power iteration.
  EXPECT_EQ(graph::largest_eigenvalue(lap),
            graph::largest_eigenvalue(lap.to_dense()));

  // Chebyshev rescaling.
  const CsrMatrix slap = graph::scaled_laplacian_csr(lap);
  const CsrMatrix slap_ref =
      CsrMatrix::from_dense(graph::scaled_laplacian(lap.to_dense()));
  EXPECT_EQ(slap.row_ptr(), slap_ref.row_ptr());
  EXPECT_EQ(slap.col_idx(), slap_ref.col_idx());
  EXPECT_EQ(slap.values(), slap_ref.values());
}

TEST(CsrGraphPipeline, GaussianKnnAdjacencyIsSymmetric) {
  Rng rng(20);
  const Matrix coords = rng.normal_matrix(25, 2, 2.0);
  const CsrMatrix adj =
      graph::gaussian_knn_adjacency(graph::knn_from_coords(coords, 4));
  const Matrix d = adj.to_dense();
  for (std::size_t i = 0; i < d.rows(); ++i) {
    EXPECT_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < d.cols(); ++j) {
      EXPECT_EQ(d(i, j), d(j, i));
    }
  }
}

TEST(CsrGraphPipeline, IsolatedNodesGetIdentityRows) {
  // Two connected pairs plus an isolated node.
  ts::NeighborList knn;
  knn.num_nodes = 5;
  knn.k = 1;
  knn.offsets = {0, 1, 2, 3, 4, 5};
  knn.idx = {1, 0, 3, 2, 0};
  knn.dist = {1.0, 1.0, 1.0, 1.0, 1e9};  // node 4's edge dies at epsilon
  graph::AdjacencyOptions opts;
  opts.epsilon = 0.5;
  opts.sigma = 1.0;
  const CsrMatrix adj = graph::gaussian_knn_adjacency(knn, opts);
  const CsrMatrix lap = graph::normalized_laplacian_csr(adj);
  const Matrix ref = graph::normalized_laplacian(adj.to_dense());
  EXPECT_EQ(lap.to_dense(), ref);
  EXPECT_EQ(lap.to_dense()(4, 4), 1.0);
}

// ---- CsrMatrix construction helpers --------------------------------------

TEST(CsrFromParts, RoundTripsAndValidates) {
  const CsrMatrix m = CsrMatrix::from_parts(3, 4, {0, 2, 2, 3}, {0, 2, 3},
                                            {1.0, -2.0, 0.5});
  Matrix expect(3, 4);
  expect(0, 0) = 1.0;
  expect(0, 2) = -2.0;
  expect(2, 3) = 0.5;
  EXPECT_EQ(m.to_dense(), expect);
  // spmm uses the transpose structure built by from_parts: exercise it.
  Rng rng(21);
  const Matrix x = rng.normal_matrix(3, 2, 1.0);
  EXPECT_EQ(spmm_t(m, x), matmul_at(m.to_dense(), x));

  EXPECT_THROW(CsrMatrix::from_parts(2, 2, {0, 1}, {0}, {1.0}), ShapeError);
  EXPECT_THROW(CsrMatrix::from_parts(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               ShapeError);
  EXPECT_THROW(CsrMatrix::from_parts(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}),
               ShapeError);  // not ascending
  EXPECT_THROW(CsrMatrix::from_parts(1, 2, {0, 1}, {5}, {1.0}), ShapeError);
}

TEST(CsrSubmatrix, MatchesDenseExtraction) {
  Rng rng(22);
  Matrix dense = rng.normal_matrix(10, 10, 1.0);
  Matrix keep = rng.uniform_matrix(10, 10, 0.0, 1.0);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (keep.data()[i] >= 0.3) dense.data()[i] = 0.0;
  }
  const CsrMatrix m = CsrMatrix::from_dense(dense);
  const std::vector<std::size_t> nodes = {1, 3, 4, 8};
  const CsrMatrix sub = m.submatrix(nodes);
  Matrix expect(nodes.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      expect(i, j) = dense(nodes[i], nodes[j]);
    }
  }
  EXPECT_EQ(sub.to_dense(), expect);
  // Transpose structure also valid on the submatrix.
  Rng rng2(23);
  const Matrix x = rng2.normal_matrix(nodes.size(), 3, 1.0);
  EXPECT_EQ(spmm_t(sub, x), matmul_at(expect, x));

  EXPECT_THROW(m.submatrix({3, 1}), ShapeError);
  EXPECT_THROW(m.submatrix({0, 10}), ShapeError);
}

}  // namespace
}  // namespace rihgcn
