#include "tensor/linalg.hpp"

#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

TEST(SolveLinear, SolvesKnownSystem) {
  Matrix a{{2, 0}, {0, 4}};
  Matrix b{{2}, {8}};
  Matrix x = solve_linear(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  Matrix b{{3}, {5}};
  Matrix x = solve_linear(a, b);
  EXPECT_NEAR(x(0, 0), 5.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(SolveLinear, MultipleRightHandSides) {
  Matrix a{{3, 1}, {1, 2}};
  Matrix b{{9, 4}, {8, 3}};
  Matrix x = solve_linear(a, b);
  EXPECT_TRUE(allclose(matmul(a, x), b, 1e-10));
}

TEST(SolveLinear, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  Matrix b{{1}, {2}};
  EXPECT_THROW(solve_linear(a, b), std::runtime_error);
}

TEST(SolveLinear, ShapeMismatchThrows) {
  EXPECT_THROW(solve_linear(Matrix(2, 3), Matrix(2, 1)), ShapeError);
  EXPECT_THROW(solve_linear(Matrix(2, 2), Matrix(3, 1)), ShapeError);
}

class SolveRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SolveRandomTest, ResidualIsTiny) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(100 + static_cast<std::uint64_t>(n));
  // Diagonally dominant => well-conditioned.
  Matrix a = rng.normal_matrix(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0 * static_cast<double>(n);
  Matrix b = rng.normal_matrix(n, 2, 1.0);
  Matrix x = solve_linear(a, b);
  EXPECT_LT(max_abs_diff(matmul(a, x), b), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveRandomTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(RidgeLeastSquares, RecoversExactSolutionWhenConsistent) {
  Rng rng(7);
  Matrix a = rng.normal_matrix(30, 4, 1.0);
  Matrix x_true = rng.normal_matrix(4, 1, 1.0);
  Matrix b = matmul(a, x_true);
  Matrix x = ridge_least_squares(a, b, 1e-10);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-5);
}

TEST(RidgeLeastSquares, RidgeShrinksSolution) {
  Rng rng(8);
  Matrix a = rng.normal_matrix(20, 3, 1.0);
  Matrix b = rng.normal_matrix(20, 1, 1.0);
  const Matrix x_small = ridge_least_squares(a, b, 1e-8);
  const Matrix x_big = ridge_least_squares(a, b, 1e3);
  EXPECT_LT(x_big.norm(), x_small.norm());
}

TEST(RidgeLeastSquares, RowMismatchThrows) {
  EXPECT_THROW(ridge_least_squares(Matrix(3, 2), Matrix(4, 1)), ShapeError);
}

}  // namespace
}  // namespace rihgcn
