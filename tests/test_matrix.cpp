#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace rihgcn {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ShapeError);
}

TEST(Matrix, FlatBufferConstructor) {
  Matrix m(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, FlatBufferSizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3, std::vector<double>{1, 2}), ShapeError);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), ShapeError);
  EXPECT_THROW((void)m.at(0, 2), ShapeError);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(1, 1), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, RowColVectorFactories) {
  Matrix r = Matrix::row_vector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Matrix c = Matrix::col_vector({1, 2});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(Matrix, AddSubInPlace) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 1}, {1, 1}};
  a += b;
  EXPECT_EQ(a(0, 0), 2.0);
  a -= b;
  EXPECT_EQ(a(0, 0), 1.0);
}

TEST(Matrix, AddShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, ShapeError);
  EXPECT_THROW(a -= b, ShapeError);
  EXPECT_THROW(a.hadamard_inplace(b), ShapeError);
}

TEST(Matrix, ScalarMultiply) {
  Matrix a{{2, 4}};
  a *= 0.5;
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(a(0, 1), 2.0);
  Matrix b = a * 3.0;
  EXPECT_EQ(b(0, 1), 6.0);
  Matrix c = 3.0 * a;
  EXPECT_EQ(c(0, 1), 6.0);
}

TEST(Matrix, Hadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 0}, {1, 2}};
  Matrix h = hadamard(a, b);
  EXPECT_EQ(h(0, 0), 2.0);
  EXPECT_EQ(h(0, 1), 0.0);
  EXPECT_EQ(h(1, 1), 8.0);
}

TEST(Matrix, Matmul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)matmul(a, b), ShapeError);
}

TEST(Matrix, MatmulIdentity) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(allclose(matmul(a, Matrix::identity(2)), a));
  EXPECT_TRUE(allclose(matmul(Matrix::identity(2), a), a));
}

TEST(Matrix, MatmulBtMatchesExplicitTranspose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8, 9}, {1, 2, 3}};
  EXPECT_TRUE(allclose(matmul_bt(a, b), matmul(a, b.transposed())));
}

TEST(Matrix, MatmulAtMatchesExplicitTranspose) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix b{{7, 8}, {9, 1}, {2, 3}};
  EXPECT_TRUE(allclose(matmul_at(a, b), matmul(a.transposed(), b)));
}

TEST(Matrix, Transposed) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, SliceCols) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix s = a.slice_cols(1, 3);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 2.0);
  EXPECT_EQ(s(1, 1), 6.0);
  EXPECT_THROW((void)a.slice_cols(2, 4), ShapeError);
}

TEST(Matrix, SliceRows) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix s = a.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_THROW((void)a.slice_rows(2, 4), ShapeError);
}

TEST(Matrix, SetColsAndRows) {
  Matrix a(2, 3);
  a.set_cols(1, Matrix{{9}, {8}});
  EXPECT_EQ(a(0, 1), 9.0);
  EXPECT_EQ(a(1, 1), 8.0);
  a.set_rows(0, Matrix{{1, 2, 3}});
  EXPECT_EQ(a(0, 2), 3.0);
  EXPECT_THROW(a.set_cols(2, Matrix(2, 2)), ShapeError);
}

TEST(Matrix, Reductions) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a.sum(), 10.0);
  EXPECT_EQ(a.mean(), 2.5);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.norm(), std::sqrt(30.0), 1e-12);
  EXPECT_EQ(a.abs_max(), 4.0);
}

TEST(Matrix, EmptyReductionsThrow) {
  Matrix m;
  EXPECT_THROW((void)m.mean(), ShapeError);
  EXPECT_THROW((void)m.min(), ShapeError);
  EXPECT_THROW((void)m.max(), ShapeError);
}

TEST(Matrix, HasNonFinite) {
  Matrix a{{1, 2}};
  EXPECT_FALSE(a.has_non_finite());
  a(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(a.has_non_finite());
  a(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(a.has_non_finite());
}

TEST(Matrix, ColMeanStd) {
  Matrix a{{1, 10}, {3, 10}};
  Matrix mu = a.col_mean();
  EXPECT_EQ(mu(0, 0), 2.0);
  EXPECT_EQ(mu(0, 1), 10.0);
  Matrix sd = a.col_std();
  EXPECT_NEAR(sd(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(sd(0, 1), 0.0, 1e-12);
}

TEST(Matrix, RowSum) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix s = a.row_sum();
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(1, 0), 7.0);
}

TEST(Matrix, AddRowBroadcast) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix row{{10, 20}};
  Matrix out = add_row_broadcast(a, row);
  EXPECT_EQ(out(0, 0), 11.0);
  EXPECT_EQ(out(1, 1), 24.0);
  EXPECT_THROW((void)add_row_broadcast(a, Matrix(1, 3)), ShapeError);
}

TEST(Matrix, HcatVcat) {
  Matrix a{{1}, {2}};
  Matrix b{{3}, {4}};
  Matrix h = hcat(a, b);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_EQ(h(1, 1), 4.0);
  Matrix v = vcat(a, b);
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_EQ(v(3, 0), 4.0);
  EXPECT_THROW((void)hcat(a, Matrix(3, 1)), ShapeError);
  EXPECT_THROW((void)vcat(a, Matrix(2, 2)), ShapeError);
}

TEST(Matrix, MapAndZip) {
  Matrix a{{1, -2}};
  Matrix m = map(a, [](double x) { return x * x; });
  EXPECT_EQ(m(0, 1), 4.0);
  Matrix z = zip(a, m, [](double x, double y) { return x + y; });
  EXPECT_EQ(z(0, 1), 2.0);
  EXPECT_THROW((void)zip(a, Matrix(2, 2), [](double, double) { return 0.0; }),
               ShapeError);
}

TEST(Matrix, MaxAbsDiffAndAllclose) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0 + 1e-12}};
  EXPECT_LT(max_abs_diff(a, b), 1e-10);
  EXPECT_TRUE(allclose(a, b, 1e-10));
  EXPECT_FALSE(allclose(a, Matrix(1, 3), 1e-10));
}

TEST(Matrix, EqualityOperator) {
  Matrix a{{1, 2}};
  Matrix b{{1, 2}};
  EXPECT_TRUE(a == b);
  b(0, 0) = 9;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, StreamOutput) {
  Matrix a{{1, 2}};
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("1x2"), std::string::npos);
}

TEST(Matrix, MatmulAccumulateAddsIntoOutput) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 3}, {4, 5}};
  Matrix out(2, 2, 1.0);
  matmul_accumulate(a, b, out);
  EXPECT_EQ(out(0, 0), 3.0);
  EXPECT_EQ(out(1, 1), 6.0);
  Matrix bad(3, 2);
  EXPECT_THROW(matmul_accumulate(a, b, bad), ShapeError);
}

// Property sweep: (AB)C == A(BC) across shapes.
class MatmulAssocTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MatmulAssocTest, Associativity) {
  auto [n, k, m, p] = GetParam();
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
  Matrix b(static_cast<std::size_t>(k), static_cast<std::size_t>(m));
  Matrix c(static_cast<std::size_t>(m), static_cast<std::size_t>(p));
  // Deterministic pseudo-random contents.
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = std::sin(1.0 + static_cast<double>(i));
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = std::cos(2.0 + static_cast<double>(i));
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] = std::sin(3.0 + 2.0 * static_cast<double>(i));
  EXPECT_TRUE(
      allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulAssocTest,
                         ::testing::Values(std::tuple{1, 1, 1, 1},
                                           std::tuple{2, 3, 4, 5},
                                           std::tuple{5, 1, 7, 2},
                                           std::tuple{8, 8, 8, 8},
                                           std::tuple{1, 9, 2, 6}));

}  // namespace
}  // namespace rihgcn
