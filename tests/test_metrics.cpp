#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rihgcn::metrics {
namespace {

TEST(ErrorAccumulator, MaeRmseKnownValues) {
  ErrorAccumulator acc;
  const Matrix pred{{1.0, 2.0}};
  const Matrix truth{{0.0, 4.0}};
  acc.add(pred, truth);
  EXPECT_DOUBLE_EQ(acc.mae(), 1.5);                 // (1 + 2) / 2
  EXPECT_DOUBLE_EQ(acc.rmse(), std::sqrt(2.5));     // sqrt((1 + 4)/2)
  EXPECT_DOUBLE_EQ(acc.count(), 2.0);
}

TEST(ErrorAccumulator, RespectsWeights) {
  ErrorAccumulator acc;
  const Matrix pred{{1.0, 100.0}};
  const Matrix truth{{0.0, 0.0}};
  const Matrix w{{1.0, 0.0}};  // the huge error is masked out
  acc.add(pred, truth, w);
  EXPECT_DOUBLE_EQ(acc.mae(), 1.0);
}

TEST(ErrorAccumulator, AddScalarAndMerge) {
  ErrorAccumulator a, b;
  a.add_scalar(2.0, 0.0);
  b.add_scalar(0.0, 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mae(), 3.0);
  EXPECT_DOUBLE_EQ(a.count(), 2.0);
  a.add_scalar(1.0, 1.0, 0.0);  // zero weight ignored
  EXPECT_DOUBLE_EQ(a.count(), 2.0);
}

TEST(ErrorAccumulator, EmptyThrowsAndReset) {
  ErrorAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW((void)acc.mae(), std::logic_error);
  EXPECT_THROW((void)acc.rmse(), std::logic_error);
  acc.add_scalar(1.0, 0.0);
  acc.reset();
  EXPECT_TRUE(acc.empty());
}

TEST(ErrorAccumulator, ShapeMismatchThrows) {
  ErrorAccumulator acc;
  EXPECT_THROW(acc.add(Matrix(2, 2), Matrix(2, 3), Matrix(2, 2)), ShapeError);
}

TEST(MaskedHelpers, OneShotValues) {
  const Matrix pred{{3.0}};
  const Matrix truth{{1.0}};
  const Matrix w{{1.0}};
  EXPECT_DOUBLE_EQ(masked_mae(pred, truth, w), 2.0);
  EXPECT_DOUBLE_EQ(masked_rmse(pred, truth, w), 2.0);
  const Matrix none{{0.0}};
  EXPECT_DOUBLE_EQ(masked_mae(pred, truth, none), 0.0);
}

TEST(ResultTable, StoresAndFormats) {
  ResultTable table("Table X", {"20%", "40%"});
  table.set("HA", 0, 2.25, 4.23);
  table.set("RIHGCN", 0, 2.08, 3.66);
  table.set("RIHGCN", 1, 2.17, 3.73);
  const auto [mae, rmse] = table.cell("RIHGCN", 1);
  EXPECT_DOUBLE_EQ(mae, 2.17);
  EXPECT_DOUBLE_EQ(rmse, 3.73);
  const std::string s = table.to_string();
  EXPECT_NE(s.find("Table X"), std::string::npos);
  EXPECT_NE(s.find("RIHGCN"), std::string::npos);
  EXPECT_NE(s.find("2.0800"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);  // HA's missing cell
}

TEST(ResultTable, CsvOutput) {
  ResultTable table("t", {"a", "b"});
  table.set("m", 1, 1.5, 2.5);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("method,group,mae,rmse"), std::string::npos);
  EXPECT_NE(csv.find("m,b,1.5,2.5"), std::string::npos);
}

TEST(ResultTable, Errors) {
  EXPECT_THROW(ResultTable("t", {}), std::invalid_argument);
  ResultTable table("t", {"a"});
  EXPECT_THROW(table.set("m", 3, 1, 1), std::out_of_range);
  EXPECT_THROW((void)table.cell("nope", 0), std::logic_error);
  table.set("m", 0, 1, 1);
  ResultTable t2("t", {"a", "b"});
  t2.set("m", 0, 1, 1);
  EXPECT_THROW((void)t2.cell("m", 1), std::logic_error);  // empty cell
}

TEST(ResultTable, MethodOrderPreserved) {
  ResultTable table("t", {"g"});
  table.set("second", 0, 1, 1);
  table.set("first", 0, 1, 1);
  table.set("second", 0, 2, 2);  // update, not duplicate
  ASSERT_EQ(table.methods().size(), 2u);
  EXPECT_EQ(table.methods()[0], "second");
  EXPECT_EQ(table.methods()[1], "first");
}

}  // namespace
}  // namespace rihgcn::metrics
