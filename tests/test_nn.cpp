#include "nn/layers.hpp"
#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace rihgcn::nn {
namespace {

TEST(Init, XavierRange) {
  Rng rng(1);
  const Matrix w = xavier_uniform(rng, 100, 100);
  const double a = std::sqrt(6.0 / 200.0);
  EXPECT_GE(w.min(), -a);
  EXPECT_LE(w.max(), a);
  EXPECT_EQ(w.rows(), 100u);
}

TEST(Init, HeNormalStd) {
  Rng rng(2);
  const Matrix w = he_normal(rng, 200, 50);
  // Sample std ~ sqrt(2/200) = 0.1.
  double s2 = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) s2 += w.data()[i] * w.data()[i];
  EXPECT_NEAR(std::sqrt(s2 / static_cast<double>(w.size())), 0.1, 0.01);
}

TEST(Linear, ForwardShapeAndValue) {
  Rng rng(3);
  Linear lin(3, 2, rng);
  ad::Tape tape;
  ad::Var x = tape.constant(Matrix(5, 3, 1.0));
  ad::Var y = lin.forward(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 5u);
  EXPECT_EQ(tape.value(y).cols(), 2u);
  EXPECT_EQ(lin.num_parameters(), 3u * 2u + 2u);
}

TEST(Linear, ZeroDimensionThrows) {
  Rng rng(4);
  EXPECT_THROW(Linear(0, 2, rng), std::invalid_argument);
  EXPECT_THROW(Linear(2, 0, rng), std::invalid_argument);
}

TEST(Linear, GradientCheck) {
  Rng rng(5);
  Linear lin(4, 3, rng);
  const Matrix x_val = rng.normal_matrix(2, 4, 1.0);
  const Matrix target = rng.normal_matrix(2, 3, 1.0);
  auto loss_value = [&] {
    ad::Tape tape;
    ad::Var y = lin.forward(tape, tape.constant(x_val));
    return tape.value(tape.masked_mse(y, target, Matrix(2, 3, 1.0)))(0, 0);
  };
  for (ad::Parameter* p : lin.parameters()) p->zero_grad();
  {
    ad::Tape tape;
    ad::Var y = lin.forward(tape, tape.constant(x_val));
    ad::Var loss = tape.masked_mse(y, target, Matrix(2, 3, 1.0));
    tape.backward(loss);
  }
  for (ad::Parameter* p : lin.parameters()) {
    EXPECT_LT(ad::gradient_check(*p, loss_value, p->grad()), 1e-5)
        << p->name();
  }
}

TEST(LstmCell, StepShapes) {
  Rng rng(6);
  LstmCell lstm(4, 8, rng);
  ad::Tape tape;
  auto state = lstm.initial_state(tape, 3);
  EXPECT_EQ(tape.value(state.h).rows(), 3u);
  EXPECT_EQ(tape.value(state.h).cols(), 8u);
  state = lstm.step(tape, tape.constant(Matrix(3, 4, 0.5)), state);
  EXPECT_EQ(tape.value(state.h).cols(), 8u);
  EXPECT_EQ(tape.value(state.c).cols(), 8u);
}

TEST(LstmCell, InputDimMismatchThrows) {
  Rng rng(7);
  LstmCell lstm(4, 8, rng);
  ad::Tape tape;
  auto state = lstm.initial_state(tape, 3);
  EXPECT_THROW((void)lstm.step(tape, tape.constant(Matrix(3, 5)), state),
               ShapeError);
}

TEST(LstmCell, ForgetBiasInitializedToOne) {
  Rng rng(8);
  LstmCell lstm(2, 4, rng);
  const ad::Parameter* bias = lstm.parameters()[2];
  // Gate layout [i | f | o | g]: forget block is columns [H, 2H).
  for (std::size_t c = 4; c < 8; ++c) EXPECT_EQ(bias->value()(0, c), 1.0);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(bias->value()(0, c), 0.0);
}

TEST(LstmCell, GradientCheckThroughTwoSteps) {
  Rng rng(9);
  LstmCell lstm(3, 4, rng);
  const Matrix x1 = rng.normal_matrix(2, 3, 1.0);
  const Matrix x2 = rng.normal_matrix(2, 3, 1.0);
  auto build = [&](ad::Tape& tape) {
    auto state = lstm.initial_state(tape, 2);
    state = lstm.step(tape, tape.constant(x1), state);
    state = lstm.step(tape, tape.constant(x2), state);
    return tape.mean_all(state.h);
  };
  auto loss_value = [&] {
    ad::Tape tape;
    return tape.value(build(tape))(0, 0);
  };
  for (ad::Parameter* p : lstm.parameters()) p->zero_grad();
  {
    ad::Tape tape;
    tape.backward(build(tape));
  }
  for (ad::Parameter* p : lstm.parameters()) {
    EXPECT_LT(ad::gradient_check(*p, loss_value, p->grad()), 1e-5)
        << p->name();
  }
}

TEST(ChebGcn, ForwardShape) {
  Rng rng(10);
  ChebGcnLayer gcn(3, 5, 3, rng);
  ad::Tape tape;
  Matrix lap = Matrix::identity(4) * 0.5;
  ad::Var y = gcn.forward(tape, tape.constant(Matrix(4, 3, 1.0)), lap);
  EXPECT_EQ(tape.value(y).rows(), 4u);
  EXPECT_EQ(tape.value(y).cols(), 5u);
}

TEST(ChebGcn, OrderOneIsPointwiseLinear) {
  // K=1 uses only T_0 = I: output must not mix nodes.
  Rng rng(11);
  ChebGcnLayer gcn(1, 1, 1, rng);
  ad::Tape tape;
  Matrix lap(2, 2);
  lap(0, 1) = lap(1, 0) = 1.0;  // strong off-diagonal coupling
  Matrix x(2, 1);
  x(0, 0) = 1.0;  // node 1 has zero input
  ad::Var y = gcn.forward(tape, tape.constant(x), lap);
  // Node 1's output is exactly the bias (no contribution from node 0).
  const double bias = gcn.parameters().back()->value()(0, 0);
  EXPECT_DOUBLE_EQ(tape.value(y)(1, 0), bias);
}

TEST(ChebGcn, HigherOrderMixesNeighbours) {
  Rng rng(12);
  ChebGcnLayer gcn(1, 1, 2, rng);
  ad::Tape tape;
  Matrix lap(2, 2);
  lap(0, 1) = lap(1, 0) = 1.0;
  Matrix x(2, 1);
  x(0, 0) = 1.0;
  ad::Var y = gcn.forward(tape, tape.constant(x), lap);
  const double bias = gcn.parameters().back()->value()(0, 0);
  EXPECT_NE(tape.value(y)(1, 0), bias);  // neighbour information arrived
}

TEST(ChebGcn, LaplacianSizeMismatchThrows) {
  Rng rng(13);
  ChebGcnLayer gcn(3, 2, 3, rng);
  ad::Tape tape;
  EXPECT_THROW(
      (void)gcn.forward(tape, tape.constant(Matrix(4, 3)), Matrix(5, 5)),
      ShapeError);
}

TEST(ChebGcn, ZeroOrderThrows) {
  Rng rng(14);
  EXPECT_THROW(ChebGcnLayer(3, 2, 0, rng), std::invalid_argument);
}

TEST(ChebGcn, GradientCheck) {
  Rng rng(15);
  ChebGcnLayer gcn(2, 3, 3, rng);
  Matrix lap = rng.normal_matrix(3, 3, 0.3);
  lap = (lap + lap.transposed()) * 0.5;  // symmetric
  const Matrix x = rng.normal_matrix(3, 2, 1.0);
  auto build = [&](ad::Tape& tape) {
    return tape.mean_all(gcn.forward(tape, tape.constant(x), lap));
  };
  auto loss_value = [&] {
    ad::Tape tape;
    return tape.value(build(tape))(0, 0);
  };
  for (ad::Parameter* p : gcn.parameters()) p->zero_grad();
  {
    ad::Tape tape;
    tape.backward(build(tape));
  }
  for (ad::Parameter* p : gcn.parameters()) {
    EXPECT_LT(ad::gradient_check(*p, loss_value, p->grad()), 1e-5)
        << p->name();
  }
}

TEST(Mlp, ForwardAndParamCount) {
  Rng rng(16);
  Mlp mlp({4, 8, 2}, rng);
  ad::Tape tape;
  ad::Var y = mlp.forward(tape, tape.constant(Matrix(3, 4, 0.1)));
  EXPECT_EQ(tape.value(y).cols(), 2u);
  EXPECT_EQ(mlp.num_parameters(), 4u * 8 + 8 + 8 * 2 + 2);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
}

TEST(CollectParameters, Flattens) {
  Rng rng(17);
  Linear a(2, 2, rng), b(2, 3, rng);
  const auto params = collect_parameters({&a, &b});
  EXPECT_EQ(params.size(), 4u);
}

// ---- Optimizer ------------------------------------------------------------

TEST(Adam, ReducesQuadraticLoss) {
  // Minimize ||w - target||^2 — Adam should converge quickly.
  ad::Parameter w(Matrix(1, 4), "w");
  const Matrix target{{1.0, -2.0, 0.5, 3.0}};
  AdamOptimizer::Config cfg;
  cfg.lr = 0.05;
  AdamOptimizer opt({&w}, cfg);
  double first_loss = 0.0, last_loss = 0.0;
  for (int it = 0; it < 400; ++it) {
    opt.zero_grad();
    ad::Tape tape;
    ad::Var loss =
        tape.masked_mse(tape.leaf(w), target, Matrix(1, 4, 1.0));
    if (it == 0) first_loss = tape.value(loss)(0, 0);
    last_loss = tape.value(loss)(0, 0);
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last_loss, 1e-3 * first_loss);
  EXPECT_LT(max_abs_diff(w.value(), target), 0.05);
}

TEST(Adam, NullParameterThrows) {
  EXPECT_THROW(AdamOptimizer({nullptr}), std::invalid_argument);
}

TEST(Adam, StepCountsAdvance) {
  ad::Parameter w(Matrix(1, 1), "w");
  AdamOptimizer opt({&w});
  EXPECT_EQ(opt.num_steps(), 0u);
  opt.step();
  EXPECT_EQ(opt.num_steps(), 1u);
}

TEST(GradClip, GlobalNormClipping) {
  ad::Parameter a(Matrix(1, 2), "a");
  ad::Parameter b(Matrix(1, 2), "b");
  a.grad() = Matrix{{3.0, 0.0}};
  b.grad() = Matrix{{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(global_grad_norm({&a, &b}), 5.0);
  clip_global_grad_norm({&a, &b}, 2.5);
  EXPECT_DOUBLE_EQ(global_grad_norm({&a, &b}), 2.5);
  // Already-small gradients are untouched.
  clip_global_grad_norm({&a, &b}, 100.0);
  EXPECT_DOUBLE_EQ(global_grad_norm({&a, &b}), 2.5);
}

TEST(EarlyStopping, StopsAfterPatience) {
  EarlyStopping stop(3);
  EXPECT_TRUE(stop.update(1.0));
  EXPECT_FALSE(stop.update(1.1));
  EXPECT_FALSE(stop.update(1.2));
  EXPECT_FALSE(stop.should_stop());
  EXPECT_FALSE(stop.update(1.3));
  EXPECT_TRUE(stop.should_stop());
  EXPECT_DOUBLE_EQ(stop.best(), 1.0);
}

TEST(EarlyStopping, ImprovementResetsCounter) {
  EarlyStopping stop(2);
  stop.update(1.0);
  stop.update(1.5);
  EXPECT_TRUE(stop.update(0.5));
  EXPECT_EQ(stop.bad_epochs(), 0u);
  EXPECT_FALSE(stop.should_stop());
}

TEST(Serialization, SaveLoadRoundTrip) {
  Rng rng(18);
  Linear lin(3, 2, rng);
  const auto params = lin.parameters();
  std::stringstream ss;
  save_parameters(ss, params);
  // Perturb, then restore.
  const Matrix original = params[0]->value();
  params[0]->value() *= 0.0;
  load_parameters(ss, params);
  EXPECT_TRUE(allclose(params[0]->value(), original, 1e-12));
}

TEST(Serialization, CountMismatchThrows) {
  Rng rng(19);
  Linear lin(2, 2, rng);
  std::stringstream ss;
  save_parameters(ss, lin.parameters());
  Linear other(2, 2, rng);
  auto too_few = std::vector<ad::Parameter*>{other.parameters()[0]};
  EXPECT_THROW(load_parameters(ss, too_few), std::runtime_error);
}

TEST(Serialization, ShapeMismatchThrows) {
  Rng rng(20);
  Linear lin(2, 2, rng);
  std::stringstream ss;
  save_parameters(ss, lin.parameters());
  Linear other(3, 2, rng);
  EXPECT_THROW(load_parameters(ss, other.parameters()), std::runtime_error);
}

TEST(Serialization, BadHeaderThrows) {
  std::stringstream ss("garbage v9\n0\n");
  EXPECT_THROW(load_parameters(ss, {}), std::runtime_error);
}

TEST(Snapshot, RestoreValues) {
  Rng rng(21);
  Linear lin(2, 2, rng);
  const auto params = lin.parameters();
  const auto snap = snapshot_values(params);
  params[0]->value() *= 5.0;
  restore_values(snap, params);
  EXPECT_TRUE(allclose(params[0]->value(), snap[0], 1e-15));
  EXPECT_THROW(restore_values({}, params), std::invalid_argument);
}

}  // namespace
}  // namespace rihgcn::nn
