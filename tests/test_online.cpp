// Tests for the deployment-oriented pieces: OnlineForecaster (rolling
// buffer, warm-up padding, unit conversion), model_summary, and the AdamW /
// LR-decay optimizer extensions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/online.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "nn/optim.hpp"

namespace rihgcn {
namespace {

struct OnlineFixture {
  data::TrafficDataset ds;
  std::unique_ptr<data::ZScoreNormalizer> nz;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;

  OnlineFixture() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 5;
    cfg.num_days = 4;
    cfg.steps_per_day = 48;
    cfg.seed = 50;
    ds = data::generate_pems_like(cfg);
    Rng rng(51);
    data::inject_mcar(ds, 0.3, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    nz = std::make_unique<data::ZScoreNormalizer>(ds, train_end);
    // NOTE: the dataset itself stays in original units here — the online
    // wrapper does its own normalization.
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 2;
    // Graphs want normalized data? They only need profiles — scale-free for
    // DTW ordering; build from a normalized copy for consistency.
    data::TrafficDataset norm_copy = ds;
    nz->normalize(norm_copy);
    graphs = std::make_unique<core::HeterogeneousGraphs>(norm_copy, train_end,
                                                         gcfg, rng);
    core::RihgcnConfig mc;
    mc.lookback = 6;
    mc.horizon = 3;
    mc.gcn_dim = 5;
    mc.lstm_dim = 7;
    model = std::make_unique<core::RihgcnModel>(*graphs, 5, 4, mc);
  }
};

TEST(OnlineForecaster, ForecastAfterWarmup) {
  OnlineFixture f;
  core::OnlineForecaster online(*f.model, *f.nz, 5, 4, 6, 3, 48);
  EXPECT_THROW((void)online.forecast(), std::logic_error);
  // Push two real readings (fewer than lookback): still works via padding.
  online.push_reading(f.ds.truth[0], f.ds.mask[0]);
  online.push_reading(f.ds.truth[1], f.ds.mask[1]);
  const Matrix pred = online.forecast();
  EXPECT_EQ(pred.rows(), 5u);
  EXPECT_EQ(pred.cols(), 3u);
  EXPECT_FALSE(pred.has_non_finite());
  // Predictions are in original units: speeds, not z-scores.
  EXPECT_GT(pred.abs_max(), 3.0);
}

TEST(OnlineForecaster, RollingBufferKeepsLookback) {
  OnlineFixture f;
  core::OnlineForecaster online(*f.model, *f.nz, 5, 4, 6, 3, 48);
  for (std::size_t t = 0; t < 20; ++t) {
    online.push_reading(f.ds.truth[t], f.ds.mask[t]);
  }
  EXPECT_EQ(online.readings_seen(), 20u);
  EXPECT_EQ(online.next_slot(), 20u % 48u);
  const auto history = online.completed_history();
  EXPECT_EQ(history.size(), 6u);  // only the lookback window is kept
}

TEST(OnlineForecaster, GapHandling) {
  OnlineFixture f;
  core::OnlineForecaster online(*f.model, *f.nz, 5, 4, 6, 3, 48);
  for (std::size_t t = 0; t < 6; ++t) {
    if (t % 2 == 0) {
      online.push_reading(f.ds.truth[t], f.ds.mask[t]);
    } else {
      online.push_gap();
    }
  }
  EXPECT_LT(online.buffer_coverage(), 0.6);
  EXPECT_GT(online.buffer_coverage(), 0.2);
  EXPECT_FALSE(online.forecast().has_non_finite());
}

TEST(OnlineForecaster, CompletedHistoryFillsGaps) {
  OnlineFixture f;
  core::OnlineForecaster online(*f.model, *f.nz, 5, 4, 6, 3, 48);
  for (std::size_t t = 0; t < 5; ++t) {
    online.push_reading(f.ds.truth[t], f.ds.mask[t]);
  }
  online.push_gap();
  const auto history = online.completed_history();
  ASSERT_EQ(history.size(), 6u);
  // The gap step is fully imputed with finite, plausible values.
  EXPECT_FALSE(history.back().has_non_finite());
  // Observed entries pass through exactly (original units round trip).
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t ff = 0; ff < 4; ++ff) {
      if (f.ds.mask[0](i, ff) > 0.5) {
        EXPECT_NEAR(history[0](i, ff), f.ds.truth[0](i, ff), 1e-9);
      }
    }
  }
}

TEST(OnlineForecaster, MatchesOfflinePredictionOnSameWindow) {
  OnlineFixture f;
  data::TrafficDataset norm = f.ds;
  f.nz->normalize(norm);
  const data::WindowSampler sampler(norm, 6, 3);
  const std::size_t start = 10;
  const data::Window w = sampler.make_window(start);
  const Matrix offline = f.model->predict(w);
  core::OnlineForecaster online(*f.model, *f.nz, 5, 4, 6, 3, 48,
                                /*start_slot=*/start % 48);
  for (std::size_t t = start; t < start + 6; ++t) {
    online.push_reading(f.ds.truth[t], f.ds.mask[t]);
  }
  const Matrix live = online.forecast();
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_NEAR(live.data()[i], f.nz->denormalize(offline.data()[i], 0),
                1e-6);
  }
}

TEST(OnlineForecaster, RejectsBadShapes) {
  OnlineFixture f;
  core::OnlineForecaster online(*f.model, *f.nz, 5, 4, 6, 3, 48);
  EXPECT_THROW(online.push_reading(Matrix(4, 4), Matrix(4, 4)), ShapeError);
  EXPECT_THROW(core::OnlineForecaster(*f.model, *f.nz, 0, 4, 6, 3, 48),
               std::invalid_argument);
}

TEST(ModelSummary, ListsParametersAndTotal) {
  OnlineFixture f;
  const std::string summary = core::model_summary(*f.model);
  EXPECT_NE(summary.find("RIHGCN"), std::string::npos);
  EXPECT_NE(summary.find("hgcn.geo.theta0"), std::string::npos);
  EXPECT_NE(summary.find("total"), std::string::npos);
  // Total in the text equals the real count.
  std::size_t total = 0;
  for (ad::Parameter* p : f.model->parameters()) total += p->size();
  EXPECT_NE(summary.find(std::to_string(total)), std::string::npos);
}

// ---- Optimizer extensions ----------------------------------------------------

TEST(AdamW, WeightDecayShrinksUnusedParameters) {
  // A parameter with zero gradient should decay toward zero under AdamW.
  ad::Parameter w(Matrix(1, 2, 10.0), "w");
  nn::AdamOptimizer::Config cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.1;
  nn::AdamOptimizer opt({&w}, cfg);
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    opt.step();
  }
  EXPECT_LT(w.value().abs_max(), 10.0 * std::pow(1.0 - 0.01, 49));
}

TEST(AdamW, NoDecayWhenDisabled) {
  ad::Parameter w(Matrix(1, 2, 10.0), "w");
  nn::AdamOptimizer opt({&w});
  opt.zero_grad();
  opt.step();
  EXPECT_DOUBLE_EQ(w.value()(0, 0), 10.0);  // zero grad, zero decay
}

TEST(LrDecay, ScheduledDecayApplies) {
  ad::Parameter w(Matrix(1, 1), "w");
  nn::AdamOptimizer::Config cfg;
  cfg.lr = 1.0;
  cfg.lr_decay = 0.5;
  cfg.lr_decay_every = 2;
  nn::AdamOptimizer opt({&w}, cfg);
  EXPECT_DOUBLE_EQ(opt.current_lr(), 1.0);
  opt.step();
  EXPECT_DOUBLE_EQ(opt.current_lr(), 1.0);
  opt.step();  // step 2 -> decay
  EXPECT_DOUBLE_EQ(opt.current_lr(), 0.5);
  opt.step();
  opt.step();  // step 4 -> decay again
  EXPECT_DOUBLE_EQ(opt.current_lr(), 0.25);
}

TEST(LrDecay, DecayedLrChangesStepSize) {
  auto run = [](double decay) {
    ad::Parameter w(Matrix(1, 1), "w");
    nn::AdamOptimizer::Config cfg;
    cfg.lr = 0.1;
    cfg.lr_decay = decay;
    cfg.lr_decay_every = 1;
    nn::AdamOptimizer opt({&w}, cfg);
    const Matrix target{{5.0}};
    for (int i = 0; i < 30; ++i) {
      opt.zero_grad();
      ad::Tape tape;
      ad::Var loss = tape.masked_mse(tape.leaf(w), target, Matrix(1, 1, 1.0));
      tape.backward(loss);
      opt.step();
    }
    return w.value()(0, 0);
  };
  // Aggressive decay freezes progress early; no decay gets closer to 5.
  EXPECT_GT(run(1.0), run(0.5));
}

}  // namespace
}  // namespace rihgcn
