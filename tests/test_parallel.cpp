// Determinism and correctness harness for the parallel tensor backend
// (tensor/parallel.hpp + the threaded kernels in tensor/matrix.cpp).
//
// Three layers of coverage:
//  1. ThreadPool unit suite — env sizing, exact-once chunk coverage,
//     exception propagation, reentrancy, shutdown under pending work,
//     ordered reduction.
//  2. Kernel property tests — the blocked/threaded matmul family against
//     the seed serial kernel (detail::matmul_naive) with exact == on
//     randomized shapes including 0/1-dim degenerate cases.
//  3. End-to-end determinism — the same seed must produce bit-for-bit
//     identical losses, gradients and trained parameters at every thread
//     count (the DESIGN.md §8 contract).
#include "tensor/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "data/windows.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

// Forces the threaded code paths on tiny inputs (so tests do not need huge
// matrices to exercise them) and pins the global pool to `threads`. Restores
// the default tuning and the env-sized pool on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(std::size_t threads, bool force_threaded = true) {
    if (force_threaded) {
      ParallelTuning::min_elems = 1;
      ParallelTuning::elem_grain = 4;
      ParallelTuning::min_matmul_flops = 1;
      ParallelTuning::serial_cutover_flops = 1;
      ParallelTuning::matmul_row_grain = 2;
    }
    ThreadPool::set_global_threads(threads);
  }
  ~BackendGuard() {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

Matrix randn(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_matrix(r, c, 1.0);
}

// ---- 1. ThreadPool unit suite ----------------------------------------------

// Temporarily sets (or unsets) RIHGCN_THREADS.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(ThreadPool, ThreadsFromEnvParsesPositiveInteger) {
  EnvVarGuard env("RIHGCN_THREADS", "3");
  EXPECT_EQ(ThreadPool::threads_from_env(), 3u);
}

TEST(ThreadPool, ThreadsFromEnvRejectsInvalidValues) {
  // A set-but-invalid RIHGCN_THREADS must fail loudly, not silently fall
  // back to hardware concurrency ("RIHGCN_THREADS=O4" hiding as auto-size).
  {
    EnvVarGuard env("RIHGCN_THREADS", "0");
    EXPECT_THROW(ThreadPool::threads_from_env(), std::runtime_error);
  }
  {
    EnvVarGuard env("RIHGCN_THREADS", "not-a-number");
    EXPECT_THROW(ThreadPool::threads_from_env(), std::runtime_error);
  }
  {
    EnvVarGuard env("RIHGCN_THREADS", "4x");  // trailing garbage
    EXPECT_THROW(ThreadPool::threads_from_env(), std::runtime_error);
  }
  {
    EnvVarGuard env("RIHGCN_THREADS", "99999");  // above the 1024 cap
    EXPECT_THROW(ThreadPool::threads_from_env(), std::runtime_error);
  }
  {
    // Unset (and empty) still auto-size to hardware concurrency.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    EnvVarGuard env("RIHGCN_THREADS", nullptr);
    EXPECT_EQ(ThreadPool::threads_from_env(), hw);
  }
}

TEST(ThreadPool, GlobalPoolIsCappedAtHardwareConcurrency) {
  // Oversubscribing the shared pool only adds contention; requests beyond
  // the core count are clamped. (Direct ThreadPool(n) stays uncapped.)
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  ThreadPool::set_global_threads(4096);
  EXPECT_LE(ThreadPool::global().num_threads(), hw);
  ThreadPool::set_global_threads(0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1013;  // prime: uneven final chunk
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 7, [&hits](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeNeverCallsBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 1, [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  auto boom = [](std::size_t b, std::size_t) {
    if (b == 0) throw std::runtime_error("chunk failure");
  };
  EXPECT_THROW(pool.parallel_for(0, 100, 10, boom), std::runtime_error);
  // The pool must survive: subsequent jobs run normally.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(0, 100, 10, [&covered](std::size_t b, std::size_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    for (std::size_t o = ob; o < oe; ++o) {
      // Nested call: must execute inline on this thread and complete.
      pool.parallel_for(o * 8, (o + 1) * 8, 2,
                        [&hits](std::size_t b, std::size_t e) {
                          for (std::size_t i = b; i < e; ++i)
                            hits[i].fetch_add(1);
                        });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, EnqueueRunsTasksAndWaitIdleBlocksUntilDone) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.enqueue([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ShutdownWithPendingTasksDoesNotHang) {
  std::atomic<int> started{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.enqueue([&started] {
        ++started;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      });
    }
    // Destructor runs with most tasks still queued: running tasks finish,
    // queued ones are discarded, and destruction must not deadlock.
  }
  EXPECT_LE(started.load(), 32);
}

TEST(ThreadPool, ParallelReduceIsThreadCountInvariant) {
  // Order-sensitive magnitudes: any reordering of the combination changes
  // the rounded result, so equality here proves the ascending-chunk order.
  constexpr std::size_t kN = 1000;
  std::vector<double> v(kN);
  Rng rng(11);
  for (std::size_t i = 0; i < kN; ++i) {
    v[i] = (i % 7 == 0) ? 1e16 : rng.uniform(-1.0, 1.0);
  }
  auto chunk_sum = [&v](std::size_t b, std::size_t e) {
    double s = 0.0;
    for (std::size_t i = b; i < e; ++i) s += v[i];
    return s;
  };
  // Reference: explicit ascending-chunk combination, fully serial.
  constexpr std::size_t kGrain = 13;
  double expected = 0.0;
  for (std::size_t b = 0; b < kN; b += kGrain) {
    expected += chunk_sum(b, std::min(kN, b + kGrain));
  }
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const double got = pool.parallel_reduce(0, kN, kGrain, 0.0, chunk_sum);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

// ---- 2. Matmul property tests ----------------------------------------------

TEST(MatmulParallel, MatchesNaiveOnRandomizedShapes) {
  BackendGuard guard(4);
  // (n, k, m) triples including degenerate 0/1 dims.
  const std::size_t shapes[][3] = {
      {0, 0, 0},  {0, 3, 2},  {3, 0, 2},   {3, 2, 0},   {1, 1, 1},
      {1, 7, 1},  {7, 1, 7},  {5, 3, 4},   {17, 9, 13}, {32, 32, 32},
      {33, 17, 29}, {4, 64, 4}, {64, 4, 64},
  };
  std::uint64_t seed = 100;
  for (const auto& s : shapes) {
    const Matrix a = randn(s[0], s[1], seed++);
    const Matrix b = randn(s[1], s[2], seed++);
    Matrix expected(s[0], s[2]);
    detail::matmul_naive(a, b, expected);
    const Matrix got = matmul(a, b);
    EXPECT_EQ(got, expected) << "shape " << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(MatmulParallel, MatchesNaiveWithSparseZeros) {
  // The naive kernel skips a_ik == 0 terms; the blocked kernel does not.
  // For zero-initialized accumulators the results must still be bitwise
  // equal (adding +/-0 products never flips stored values away from +0).
  BackendGuard guard(4);
  Rng rng(42);
  Matrix a = rng.normal_matrix(19, 23, 1.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (rng.uniform() < 0.6) a.data()[i] = 0.0;
  }
  const Matrix b = randn(23, 11, 43);
  Matrix expected(19, 11);
  detail::matmul_naive(a, b, expected);
  EXPECT_EQ(matmul(a, b), expected);
}

TEST(MatmulParallel, AccumulatesIntoExistingOutput) {
  BackendGuard guard(4);
  const Matrix a = randn(13, 7, 1);
  const Matrix b = randn(7, 9, 2);
  Matrix expected = randn(13, 9, 3);
  Matrix got = expected;
  detail::matmul_naive(a, b, expected);
  matmul_accumulate(a, b, got);
  EXPECT_EQ(got, expected);
}

TEST(MatmulParallel, TransposedVariantsMatchExplicitTranspose) {
  BackendGuard guard(4);
  const Matrix a = randn(14, 6, 5);
  const Matrix b = randn(10, 6, 6);   // matmul_bt: a (14x6) * b^T (6x10)
  const Matrix c = randn(14, 12, 7);  // matmul_at: a^T (6x14) * c (14x12)
  EXPECT_EQ(matmul_bt(a, b), matmul(a, b.transposed()));
  EXPECT_EQ(matmul_at(a, c), matmul(a.transposed(), c));
}

TEST(MatmulParallel, ResultIsThreadCountInvariant) {
  const Matrix a = randn(37, 21, 8);
  const Matrix b = randn(21, 15, 9);
  Matrix serial;
  {
    BackendGuard guard(1);
    serial = matmul(a, b);
  }
  for (const std::size_t threads : {2u, 3u, 4u}) {
    BackendGuard guard(threads);
    EXPECT_EQ(matmul(a, b), serial) << "threads=" << threads;
  }
}

TEST(MatmulParallel, ShapeErrorReportsBothOperandDims) {
  const Matrix a = randn(2, 3, 1);
  const Matrix b = randn(5, 9, 2);
  try {
    (void)matmul(a, b);
    FAIL() << "expected ShapeError";
  } catch (const ShapeError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2x3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("5x9"), std::string::npos) << msg;
  }
}

TEST(MatmulParallel, AccumulateShapeErrorReportsAllDims) {
  const Matrix a = randn(2, 3, 1);
  const Matrix b = randn(3, 4, 2);
  Matrix out(5, 9);
  try {
    matmul_accumulate(a, b, out);
    FAIL() << "expected ShapeError";
  } catch (const ShapeError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("5x9"), std::string::npos) << msg;  // out
    EXPECT_NE(msg.find("2x3"), std::string::npos) << msg;  // A
    EXPECT_NE(msg.find("3x4"), std::string::npos) << msg;  // B
    EXPECT_NE(msg.find("2x4"), std::string::npos) << msg;  // required
  }
}

TEST(MatmulParallel, ElementwiseOpsAreThreadCountInvariant) {
  const Matrix a = randn(23, 17, 10);
  const Matrix b = randn(23, 17, 11);
  Matrix sum_serial, had_serial, tr_serial;
  {
    BackendGuard guard(1);
    sum_serial = a + b;
    had_serial = hadamard(a, b);
    tr_serial = a.transposed();
  }
  for (const std::size_t threads : {2u, 4u}) {
    BackendGuard guard(threads);
    EXPECT_EQ(a + b, sum_serial) << "threads=" << threads;
    EXPECT_EQ(hadamard(a, b), had_serial) << "threads=" << threads;
    EXPECT_EQ(a.transposed(), tr_serial) << "threads=" << threads;
  }
}

// ---- 3. End-to-end determinism ---------------------------------------------

// Small but complete RIHGCN setup (both directions, temporal graphs,
// consistency loss) shared by the determinism tests. The dataset and graphs
// are deterministic functions of fixed seeds, so every instance is
// identical; a fresh model with the same config seed has identical initial
// parameters.
struct TinyRihgcn {
  data::TrafficDataset ds;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  core::RihgcnConfig model_cfg;

  TinyRihgcn() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 10;
    cfg.num_days = 2;
    cfg.steps_per_day = 48;
    ds = data::generate_pems_like(cfg);
    Rng rng(21);
    data::inject_mcar(ds, 0.3, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 2;
    graphs = std::make_unique<core::HeterogeneousGraphs>(ds, train_end, gcfg,
                                                         rng);
    model_cfg.lookback = 6;
    model_cfg.horizon = 3;
    model_cfg.gcn_dim = 6;
    model_cfg.lstm_dim = 8;
    model_cfg.seed = 77;
  }

  [[nodiscard]] std::unique_ptr<core::RihgcnModel> make_model() const {
    return std::make_unique<core::RihgcnModel>(*graphs, ds.num_nodes(),
                                               ds.num_features(), model_cfg);
  }
};

TEST(ParallelDeterminism, LossAndGradientsBitwiseEqualAcrossThreadCounts) {
  TinyRihgcn fixture;
  const data::Window window = fixture.sampler->make_window(5);

  double ref_loss = 0.0;
  std::vector<Matrix> ref_grads;
  bool have_ref = false;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    BackendGuard guard(threads);
    auto model = fixture.make_model();
    for (ad::Parameter* p : model->parameters()) p->zero_grad();
    ad::Tape tape;
    ad::Var loss = model->training_loss(tape, window);
    tape.backward(loss);
    const double loss_val = tape.value(loss)(0, 0);
    std::vector<Matrix> grads;
    for (ad::Parameter* p : model->parameters()) grads.push_back(p->grad());
    if (!have_ref) {
      ref_loss = loss_val;
      ref_grads = std::move(grads);
      have_ref = true;
      continue;
    }
    EXPECT_EQ(loss_val, ref_loss) << "threads=" << threads;
    ASSERT_EQ(grads.size(), ref_grads.size());
    for (std::size_t i = 0; i < grads.size(); ++i) {
      EXPECT_EQ(grads[i], ref_grads[i])
          << "threads=" << threads << " parameter #" << i;
    }
  }
}

TEST(ParallelDeterminism, TrainedParametersBitwiseEqualSerialVsParallel) {
  TinyRihgcn fixture;
  const data::SplitIndices split = fixture.sampler->split();
  core::TrainConfig tcfg;
  tcfg.max_epochs = 1;
  tcfg.batch_size = 4;
  tcfg.max_train_windows = 8;
  tcfg.max_val_windows = 4;
  // Kernel-level parallelism only: the trainer's own data-parallel workers
  // reduce gradient sinks in a thread-count-dependent order, so that axis
  // is pinned to 1 (its determinism is per-count, not cross-count).
  tcfg.num_threads = 1;

  auto run = [&](std::size_t threads) {
    BackendGuard guard(threads);
    auto model = fixture.make_model();
    (void)core::train_model(*model, *fixture.sampler, split, tcfg);
    std::vector<Matrix> out;
    for (ad::Parameter* p : model->parameters()) out.push_back(p->value());
    return out;
  };

  const std::vector<Matrix> serial = run(1);
  const std::vector<Matrix> parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "parameter #" << i;
  }
}

}  // namespace
}  // namespace rihgcn
