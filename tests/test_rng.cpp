#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace rihgcn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double s = 0.0, s2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(17);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rng.normal(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(23);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(29);
  const auto p = rng.permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 15u);  // expected ~1 fixed point
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(20, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto v : s) EXPECT_LT(v, 20u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, MatrixFactories) {
  Rng rng(37);
  const Matrix n = rng.normal_matrix(10, 10, 2.0);
  EXPECT_EQ(n.rows(), 10u);
  const Matrix u = rng.uniform_matrix(5, 5, -1.0, 1.0);
  EXPECT_GE(u.min(), -1.0);
  EXPECT_LT(u.max(), 1.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(41);
  Rng child = a.split();
  // Parent and child should not generate identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace rihgcn
