#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace rihgcn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double s = 0.0, s2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(17);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rng.normal(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(23);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(29);
  const auto p = rng.permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 15u);  // expected ~1 fixed point
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(20, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto v : s) EXPECT_LT(v, 20u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, MatrixFactories) {
  Rng rng(37);
  const Matrix n = rng.normal_matrix(10, 10, 2.0);
  EXPECT_EQ(n.rows(), 10u);
  const Matrix u = rng.uniform_matrix(5, 5, -1.0, 1.0);
  EXPECT_GE(u.min(), -1.0);
  EXPECT_LT(u.max(), 1.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(41);
  Rng child = a.split();
  // Parent and child should not generate identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---- Stream-stability regression -------------------------------------------
//
// Golden first-16 draws for the default seed and seed 42. Every experiment's
// reproducibility rides on these streams, so any change to the xoshiro256**
// core, the seeding, or the uniform mapping must show up here as a hard
// failure — not as silently shifted results. normal() additionally goes
// through libm (log/sqrt/cos), so it gets a near-equality bound instead of
// exact bits.

TEST(Rng, GoldenU64StreamDefaultSeed) {
  const std::uint64_t expected[16] = {
      0x422ea740d0977210ULL, 0xe062b061b42e2928ULL, 0x5a071fc5930841b6ULL,
      0x01334ef8ed3cc2bdULL, 0xe45cbd6a2d9e96dbULL, 0x3bc1fe841a5f292fULL,
      0x60001d95ebbbd8e6ULL, 0xa0aee00b5b303762ULL, 0x9e23c8d7514cf750ULL,
      0xfc79b675a1a76a3cULL, 0xd430797eb1952242ULL, 0x5d8c1e38c042f56dULL,
      0x62192f394c129095ULL, 0xb66848e210a0f50dULL, 0x2d1d2eb24edaba45ULL,
      0x794532bcac68202cULL,
  };
  Rng rng;
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, GoldenU64StreamSeed42) {
  const std::uint64_t expected[16] = {
      0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL, 0xae17533239e499a1ULL,
      0xecb8ad4703b360a1ULL, 0xfde6dc7fe2ec5e64ULL, 0xc50da53101795238ULL,
      0xb82154855a65ddb2ULL, 0xd99a2743ebe60087ULL, 0xc2e96e726e97647eULL,
      0x9556615f775fbc3dULL, 0xaeb53b340c103971ULL, 0x4a69db9873af8965ULL,
      0xcd0feda93006c6b6ULL, 0x52480865a4b42742ULL, 0xb60dec3bf2d887cdULL,
      0xe0b55a68b96677faULL,
  };
  Rng rng(42);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Rng, GoldenUniformStream) {
  const double expected_default[4] = {
      0.2585243733634266,
      0.87650587449405093,
      0.35167120526878737,
      0.0046891553622456783,
  };
  Rng rng;
  for (double e : expected_default) EXPECT_DOUBLE_EQ(rng.uniform(), e);
  const double expected_42[4] = {
      0.083862971059882163,
      0.37898025066266861,
      0.68004341102813937,
      0.92469294532538759,
  };
  Rng rng42(42);
  for (double e : expected_42) EXPECT_DOUBLE_EQ(rng42.uniform(), e);
}

TEST(Rng, GoldenNormalStream) {
  const double expected_default[4] = {
      1.1740369082005633,
      -1.1520277521805258,
      1.4450963333431925,
      0.042588954549205714,
  };
  Rng rng;
  for (double e : expected_default) EXPECT_NEAR(rng.normal(), e, 1e-14);
  const double expected_42[4] = {
      -1.6132237513849161,
      1.5344873235334195,
      0.78169204505734891,
      -0.40019349432348483,
  };
  Rng rng42(42);
  for (double e : expected_42) EXPECT_NEAR(rng42.normal(), e, 1e-14);
}

}  // namespace
}  // namespace rihgcn
