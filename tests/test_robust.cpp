// Robustness suite (DESIGN.md §11): NumericalGuard semantics, durable
// CRC-verified training checkpoints with bitwise-identical resume, the
// deterministic fault injector, training under injected faults, and the
// OnlineForecaster degradation paths (sanitize / stuck detection / fallback
// / scrub). The CleanRun* tests double as the CI gate that the guard never
// fires on healthy data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "baselines/classical.hpp"
#include "baselines/neural.hpp"
#include "core/online.hpp"
#include "core/robust.hpp"
#include "core/trainer.hpp"
#include "data/faults.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "nn/optim.hpp"

namespace rihgcn {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---- CRC32 / RngState ------------------------------------------------------

TEST(Crc32, KnownAnswerVector) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(nn::crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(nn::crc32(std::string()), 0u);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  std::string a = "rihgcn checkpoint payload";
  std::string b = a;
  b[7] = static_cast<char>(b[7] ^ 0x01);
  EXPECT_NE(nn::crc32(a), nn::crc32(b));
}

TEST(RngState, RoundTripReplaysStreamExactly) {
  Rng rng(99);
  (void)rng.normal();  // leave a Box-Muller cached normal pending
  const RngState snap = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(rng.normal());
  std::vector<std::size_t> perm = rng.permutation(10);

  Rng other(1);  // different seed; state restore must fully override
  other.set_state(snap);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(other.normal(), expected[i]);
  EXPECT_EQ(other.permutation(10), perm);
}

// ---- NumericalGuard --------------------------------------------------------

struct GuardRig {
  ad::Parameter w{Matrix(2, 2, 1.0), "w"};
  std::vector<ad::Parameter*> params{&w};
  nn::AdamOptimizer opt{params};
};

TEST(NumericalGuard, NonFiniteLossVetoed) {
  GuardRig rig;
  core::NumericalGuard guard(rig.params, rig.opt, core::GuardConfig{});
  EXPECT_EQ(guard.inspect(kNaN), core::NumericalGuard::Verdict::kSkipBatch);
  EXPECT_EQ(guard.counters().nonfinite_losses, 1u);
  EXPECT_EQ(guard.counters().batches_skipped, 1u);
  EXPECT_FALSE(guard.counters().clean());
}

TEST(NumericalGuard, NonFiniteGradientVetoed) {
  GuardRig rig;
  core::NumericalGuard guard(rig.params, rig.opt, core::GuardConfig{});
  rig.w.grad()(0, 1) = kNaN;
  EXPECT_EQ(guard.inspect(1.0), core::NumericalGuard::Verdict::kSkipBatch);
  EXPECT_EQ(guard.counters().nonfinite_grads, 1u);
}

TEST(NumericalGuard, SpikeArmsOnlyAfterWarmup) {
  GuardRig rig;
  core::GuardConfig gc;
  gc.warmup_steps = 2;
  gc.spike_factor = 100.0;
  core::NumericalGuard guard(rig.params, rig.opt, gc);
  // Before warmup, even a huge finite loss passes (it just seeds the EMA).
  EXPECT_EQ(guard.inspect(1e6), core::NumericalGuard::Verdict::kOk);
  guard.after_step();

  GuardRig rig2;
  core::NumericalGuard armed(rig2.params, rig2.opt, gc);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(armed.inspect(1.0), core::NumericalGuard::Verdict::kOk);
    armed.after_step();
  }
  EXPECT_EQ(armed.inspect(1e6), core::NumericalGuard::Verdict::kSkipBatch);
  EXPECT_EQ(armed.counters().loss_spikes, 1u);
  // A normal loss right after is accepted — the EMA was not poisoned.
  EXPECT_EQ(armed.inspect(1.1), core::NumericalGuard::Verdict::kOk);
}

TEST(NumericalGuard, LrBackoffIsBounded) {
  GuardRig rig;
  core::GuardConfig gc;
  gc.lr_backoff = 0.5;
  gc.max_lr_backoffs = 2;
  gc.max_consecutive_bad = 100;  // keep rollback out of this test
  core::NumericalGuard guard(rig.params, rig.opt, gc);
  const double lr0 = rig.opt.current_lr();
  for (int i = 0; i < 5; ++i) (void)guard.inspect(kNaN);
  EXPECT_DOUBLE_EQ(rig.opt.current_lr(), lr0 * 0.25);  // only 2 backoffs
  EXPECT_EQ(guard.counters().lr_backoffs, 2u);
  EXPECT_EQ(guard.counters().batches_skipped, 5u);
}

TEST(NumericalGuard, RollbackRestoresParametersAndOptimizer) {
  GuardRig rig;
  core::GuardConfig gc;
  gc.max_consecutive_bad = 3;
  core::NumericalGuard guard(rig.params, rig.opt, gc);
  // Simulate divergence: parameters wander off after the snapshot.
  rig.w.value().fill(123.0);
  (void)guard.inspect(kNaN);
  (void)guard.inspect(kNaN);
  EXPECT_EQ(guard.counters().rollbacks, 0u);
  (void)guard.inspect(kNaN);  // 3rd consecutive bad -> rollback
  EXPECT_EQ(guard.counters().rollbacks, 1u);
  for (std::size_t i = 0; i < rig.w.value().size(); ++i) {
    EXPECT_EQ(rig.w.value().data()[i], 1.0);  // back to the snapshot
  }
  // The backed-off LR survives the rollback (retry with smaller steps).
  EXPECT_LT(rig.opt.current_lr(), 1e-3);
}

TEST(NumericalGuard, DisabledGuardNeverIntervenes) {
  GuardRig rig;
  core::GuardConfig gc;
  gc.enabled = false;
  core::NumericalGuard guard(rig.params, rig.opt, gc);
  EXPECT_EQ(guard.inspect(kNaN), core::NumericalGuard::Verdict::kOk);
  EXPECT_TRUE(guard.counters().clean());
}

// ---- Shared training fixture ----------------------------------------------

struct TrainFixture {
  data::TrafficDataset ds;  // normalized
  std::unique_ptr<data::WindowSampler> sampler;
  data::SplitIndices split;

  explicit TrainFixture(double missing = 0.3) {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 5;
    cfg.num_days = 3;
    cfg.steps_per_day = 48;
    cfg.seed = 77;
    ds = data::generate_pems_like(cfg);
    Rng rng(78);
    if (missing > 0.0) data::inject_mcar(ds, missing, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    split = sampler->split();
  }

  baselines::NeuralBaselineConfig nb_config() const {
    baselines::NeuralBaselineConfig c;
    c.lookback = 6;
    c.horizon = 3;
    c.hidden = 8;
    c.cheb_order = 2;
    return c;
  }

  core::TrainConfig small_tc() const {
    core::TrainConfig tc;
    tc.max_epochs = 2;
    tc.max_train_windows = 24;
    tc.max_val_windows = 12;
    return tc;
  }
};

bool params_all_finite(core::ForecastModel& model) {
  for (ad::Parameter* p : model.parameters()) {
    if (p->value().has_non_finite()) return false;
  }
  return true;
}

// The CI clean-path gate: on healthy data every guard counter stays zero.
TEST(NumericalGuard, CleanRunKeepsAllCountersZero) {
  TrainFixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  core::TrainConfig tc = f.small_tc();
  tc.max_epochs = 3;
  const core::TrainReport report =
      core::train_model(model, *f.sampler, f.split, tc);
  EXPECT_TRUE(report.guard.clean());
  EXPECT_EQ(report.guard.batches_skipped, 0u);
  EXPECT_EQ(report.guard.nonfinite_losses, 0u);
  EXPECT_EQ(report.guard.nonfinite_grads, 0u);
  EXPECT_EQ(report.guard.loss_spikes, 0u);
  EXPECT_EQ(report.guard.lr_backoffs, 0u);
  EXPECT_EQ(report.guard.rollbacks, 0u);
}

// ---- Durable training checkpoints ------------------------------------------

TEST(TrainCheckpoint, SaveLoadRoundTrip) {
  ad::Parameter a(Matrix(2, 3, 0.5), "a");
  ad::Parameter b(Matrix(1, 4, -1.25), "b");
  std::vector<ad::Parameter*> params{&a, &b};
  nn::AdamOptimizer opt(params);
  for (int i = 0; i < 3; ++i) {  // make moments/step non-trivial
    a.grad().fill(0.1);
    b.grad().fill(-0.2);
    opt.step();
  }
  Rng rng(5);
  (void)rng.normal();

  nn::TrainCheckpoint ckpt;
  ckpt.epoch = 7;
  ckpt.batch_size = 8;
  ckpt.num_threads = 2;
  ckpt.seed = 42;
  ckpt.rng = rng.state();
  ckpt.adam = opt.state();
  ckpt.stopper_best = 0.31415;
  ckpt.stopper_bad_epochs = 2;
  ckpt.guard_loss_ema = 1.5;
  ckpt.guard_ema_initialized = true;
  ckpt.guard_good_steps = 21;
  ckpt.guard_backoffs_used = 1;
  ckpt.best_values = nn::snapshot_values(params);
  const std::vector<Matrix> saved_values = nn::snapshot_values(params);

  const std::string path = testing::TempDir() + "rihgcn_roundtrip.ckpt";
  nn::save_training_checkpoint(path, ckpt, params);

  a.value().fill(0.0);  // wreck the live state; load must restore it
  b.value().fill(99.0);
  const nn::TrainCheckpoint back = nn::load_training_checkpoint(path, params);

  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.batch_size, 8u);
  EXPECT_EQ(back.num_threads, 2u);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.rng.words, ckpt.rng.words);
  EXPECT_EQ(back.rng.has_cached_normal, ckpt.rng.has_cached_normal);
  EXPECT_EQ(back.rng.cached_normal, ckpt.rng.cached_normal);
  EXPECT_EQ(back.adam.t, ckpt.adam.t);
  EXPECT_EQ(back.adam.lr, ckpt.adam.lr);
  ASSERT_EQ(back.adam.m.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t i = 0; i < back.adam.m[k].size(); ++i) {
      EXPECT_EQ(back.adam.m[k].data()[i], ckpt.adam.m[k].data()[i]);
      EXPECT_EQ(back.adam.v[k].data()[i], ckpt.adam.v[k].data()[i]);
    }
  }
  EXPECT_EQ(back.stopper_best, 0.31415);
  EXPECT_EQ(back.stopper_bad_epochs, 2u);
  EXPECT_EQ(back.guard_loss_ema, 1.5);
  EXPECT_TRUE(back.guard_ema_initialized);
  EXPECT_EQ(back.guard_good_steps, 21u);
  EXPECT_EQ(back.guard_backoffs_used, 1u);
  ASSERT_EQ(back.best_values.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    ASSERT_TRUE(back.best_values[k].same_shape(saved_values[k]));
    for (std::size_t i = 0; i < saved_values[k].size(); ++i) {
      EXPECT_EQ(back.best_values[k].data()[i], saved_values[k].data()[i]);
    }
  }
  for (std::size_t k = 0; k < 2; ++k) {  // live values restored bitwise
    for (std::size_t i = 0; i < saved_values[k].size(); ++i) {
      EXPECT_EQ(params[k]->value().data()[i], saved_values[k].data()[i]);
    }
  }
}

TEST(TrainCheckpoint, FlippedPayloadByteIsRejected) {
  ad::Parameter a(Matrix(3, 3, 1.5), "a");
  std::vector<ad::Parameter*> params{&a};
  nn::AdamOptimizer opt(params);
  nn::TrainCheckpoint ckpt;
  ckpt.batch_size = 8;
  ckpt.num_threads = 1;
  ckpt.adam = opt.state();
  const std::string path = testing::TempDir() + "rihgcn_corrupt.ckpt";
  nn::save_training_checkpoint(path, ckpt, params);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit well inside the payload (past the two header lines).
  const std::size_t header_end = bytes.find('\n', bytes.find('\n') + 1) + 1;
  ASSERT_LT(header_end + 20, bytes.size());
  bytes[header_end + 20] = static_cast<char>(bytes[header_end + 20] ^ 0x04);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  try {
    (void)nn::load_training_checkpoint(path, params);
    FAIL() << "corrupt checkpoint was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(TrainCheckpoint, TruncatedFileIsRejected) {
  ad::Parameter a(Matrix(3, 3, 1.5), "a");
  std::vector<ad::Parameter*> params{&a};
  nn::AdamOptimizer opt(params);
  nn::TrainCheckpoint ckpt;
  ckpt.adam = opt.state();
  const std::string path = testing::TempDir() + "rihgcn_truncated.ckpt";
  nn::save_training_checkpoint(path, ckpt, params);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes.substr(0, bytes.size() / 2);
  out.close();
  EXPECT_THROW((void)nn::load_training_checkpoint(path, params),
               std::runtime_error);
}

TEST(TrainCheckpoint, MissingFileIsRejected) {
  ad::Parameter a(Matrix(1, 1), "a");
  std::vector<ad::Parameter*> params{&a};
  EXPECT_THROW((void)nn::load_training_checkpoint(
                   testing::TempDir() + "rihgcn_nonexistent.ckpt", params),
               std::runtime_error);
}

// The headline acceptance test: kill a run mid-schedule, resume it, and the
// final parameters are bitwise identical to the uninterrupted run.
TEST(TrainCheckpoint, KillAndResumeIsBitwiseIdentical) {
  TrainFixture f;
  core::TrainConfig base;
  base.max_epochs = 6;
  base.max_train_windows = 24;
  base.max_val_windows = 12;
  base.num_threads = 1;

  // Run A: uninterrupted, 6 epochs.
  baselines::FcLstmModel model_a(4, f.nb_config());
  const core::TrainReport ra =
      core::train_model(model_a, *f.sampler, f.split, base);

  // Run B: "killed" after 3 epochs, checkpointing every epoch.
  const std::string path = testing::TempDir() + "rihgcn_resume.ckpt";
  baselines::FcLstmModel model_b(4, f.nb_config());
  core::TrainConfig tc_b = base;
  tc_b.max_epochs = 3;
  tc_b.checkpoint_path = path;
  const core::TrainReport rb =
      core::train_model(model_b, *f.sampler, f.split, tc_b);
  EXPECT_GE(rb.checkpoints_written, 3u);

  // Run C: fresh process image resumes B's checkpoint to the full schedule.
  baselines::FcLstmModel model_c(4, f.nb_config());
  core::TrainConfig tc_c = base;
  tc_c.checkpoint_path = path;
  tc_c.resume = true;
  const core::TrainReport rc =
      core::train_model(model_c, *f.sampler, f.split, tc_c);
  EXPECT_EQ(rc.resumed_epoch, 3u);
  EXPECT_EQ(rc.epochs_run + rc.resumed_epoch, ra.epochs_run);

  const auto pa = model_a.parameters();
  const auto pc = model_c.parameters();
  ASSERT_EQ(pa.size(), pc.size());
  for (std::size_t k = 0; k < pa.size(); ++k) {
    ASSERT_TRUE(pa[k]->value().same_shape(pc[k]->value()));
    for (std::size_t i = 0; i < pa[k]->value().size(); ++i) {
      EXPECT_EQ(pa[k]->value().data()[i], pc[k]->value().data()[i])
          << "param " << k << " entry " << i << " differs after resume";
    }
  }
  // The recorded histories line up too: C's epochs continue A's tail.
  ASSERT_EQ(rc.val_maes.size() + rc.resumed_epoch, ra.val_maes.size());
  for (std::size_t e = 0; e < rc.val_maes.size(); ++e) {
    EXPECT_EQ(rc.val_maes[e], ra.val_maes[e + rc.resumed_epoch]);
  }
}

TEST(TrainCheckpoint, ResumeRejectsContractMismatch) {
  TrainFixture f;
  const std::string path = testing::TempDir() + "rihgcn_contract.ckpt";
  baselines::FcLstmModel model(4, f.nb_config());
  core::TrainConfig tc = f.small_tc();
  tc.checkpoint_path = path;
  (void)core::train_model(model, *f.sampler, f.split, tc);

  baselines::FcLstmModel model2(4, f.nb_config());
  core::TrainConfig bad = tc;
  bad.resume = true;
  bad.seed = tc.seed + 1;  // different shuffle stream => refuse
  EXPECT_THROW((void)core::train_model(model2, *f.sampler, f.split, bad),
               std::runtime_error);
}

// ---- Fault injector ---------------------------------------------------------

data::TrafficDataset tiny_dataset(std::uint64_t seed = 7) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 5;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = seed;
  return data::generate_pems_like(cfg);
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(FaultInjection, SameSeedSameCorruption) {
  data::TrafficDataset d1 = tiny_dataset();
  data::TrafficDataset d2 = tiny_dataset();
  data::FaultInjector f1(123), f2(123);
  (void)f1.nan_burst(d1, 0.01);
  (void)f2.nan_burst(d2, 0.01);
  (void)f1.spike(d1, 0.01);
  (void)f2.spike(d2, 0.01);
  for (std::size_t t = 0; t < d1.num_timesteps(); ++t) {
    ASSERT_TRUE(bitwise_equal(d1.truth[t], d2.truth[t])) << "t=" << t;
    ASSERT_TRUE(bitwise_equal(d1.mask[t], d2.mask[t])) << "t=" << t;
  }
}

TEST(FaultInjection, NanBurstCorruptsObservedEntries) {
  data::TrafficDataset ds = tiny_dataset();
  data::FaultInjector inj(9);
  const data::FaultStats stats = inj.nan_burst(ds, 0.02, 3.0);
  EXPECT_GT(stats.entries_corrupted, 0u);
  EXPECT_GT(stats.events, 0u);
  std::size_t nans = 0;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    for (std::size_t i = 0; i < ds.truth[t].size(); ++i) {
      if (std::isnan(ds.truth[t].data()[i])) {
        ++nans;
        EXPECT_GT(ds.mask[t].data()[i], 0.5);  // still claims "observed"
      }
    }
  }
  EXPECT_EQ(nans, stats.entries_corrupted);
}

TEST(FaultInjection, StuckAtFreezesRuns) {
  data::TrafficDataset ds = tiny_dataset();
  data::TrafficDataset orig = ds;
  data::FaultInjector inj(10);
  const data::FaultStats stats = inj.stuck_at(ds, 0.4, 10);
  EXPECT_GT(stats.entries_corrupted, 0u);
  EXPECT_EQ(stats.events, 2u);  // 40% of 5 nodes
  // Still finite, and some node now repeats a value it did not before.
  std::size_t changed = 0;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    EXPECT_FALSE(ds.truth[t].has_non_finite());
    if (!bitwise_equal(ds.truth[t], orig.truth[t])) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

TEST(FaultInjection, SpikeInjectsHugeOutliers) {
  data::TrafficDataset ds = tiny_dataset();
  double peak = 0.0;
  for (const Matrix& x : ds.truth) peak = std::max(peak, x.abs_max());
  data::FaultInjector inj(11);
  const data::FaultStats stats = inj.spike(ds, 0.01, 50.0);
  EXPECT_GT(stats.entries_corrupted, 0u);
  double new_peak = 0.0;
  for (const Matrix& x : ds.truth) new_peak = std::max(new_peak, x.abs_max());
  EXPECT_GE(new_peak, 49.0 * peak);
}

TEST(FaultInjection, DropoutAndFeedGapOnlyTouchMask) {
  data::TrafficDataset ds = tiny_dataset();
  const data::TrafficDataset orig = ds;
  data::FaultInjector inj(12);
  const data::FaultStats drop = inj.sensor_dropout(ds, 0.4, 12);
  const data::FaultStats gap = inj.feed_gap(ds, 6);
  EXPECT_GT(drop.entries_masked, 0u);
  EXPECT_GT(gap.entries_masked, 0u);
  bool some_step_fully_dark = false;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    ASSERT_TRUE(bitwise_equal(ds.truth[t], orig.truth[t]));  // values intact
    if (ds.mask[t].sum() == 0.0) some_step_fully_dark = true;
  }
  EXPECT_TRUE(some_step_fully_dark);  // the feed gap really darkened steps
}

TEST(FaultInjection, RejectsBadRates) {
  data::TrafficDataset ds = tiny_dataset();
  data::FaultInjector inj(13);
  EXPECT_THROW((void)inj.nan_burst(ds, 1.5), std::invalid_argument);
  EXPECT_THROW((void)inj.spike(ds, -0.1), std::invalid_argument);
  EXPECT_THROW((void)inj.stuck_at(ds, 2.0, 5), std::invalid_argument);
}

// ---- Training under injected faults ----------------------------------------

// NaN bursts in "observed" entries poison losses/gradients; the guard must
// skip those batches, keep the parameters finite, and report the damage.
TEST(FaultInjection, TrainingSurvivesNanBurstWithGuardCountersFiring) {
  TrainFixture f(/*missing=*/0.2);
  data::FaultInjector inj(31);
  (void)inj.nan_burst(f.ds, 0.05, 4.0);  // inject AFTER normalization
  data::WindowSampler sampler(f.ds, 6, 3);
  baselines::FcLstmModel model(4, f.nb_config());
  core::TrainConfig tc = f.small_tc();
  const core::TrainReport report =
      core::train_model(model, sampler, sampler.split(), tc);
  EXPECT_TRUE(params_all_finite(model));
  EXPECT_GT(report.guard.batches_skipped, 0u);
  EXPECT_GT(report.guard.nonfinite_losses + report.guard.nonfinite_grads, 0u);
}

TEST(FaultInjection, TrainingSurvivesSpikes) {
  TrainFixture f(/*missing=*/0.2);
  data::FaultInjector inj(32);
  (void)inj.spike(f.ds, 0.005, 1e6);
  data::WindowSampler sampler(f.ds, 6, 3);
  baselines::FcLstmModel model(4, f.nb_config());
  core::TrainConfig tc = f.small_tc();
  tc.guard.warmup_steps = 1;
  const core::TrainReport report =
      core::train_model(model, sampler, sampler.split(), tc);
  EXPECT_TRUE(params_all_finite(model));
  EXPECT_EQ(report.epochs_run, tc.max_epochs);
}

TEST(FaultInjection, TrainingSurvivesOutagesAndGaps) {
  TrainFixture f(/*missing=*/0.2);
  data::FaultInjector inj(33);
  (void)inj.stuck_at(f.ds, 0.4, 12);
  (void)inj.sensor_dropout(f.ds, 0.4, 12);
  (void)inj.feed_gap(f.ds, 6);
  data::WindowSampler sampler(f.ds, 6, 3);
  baselines::FcLstmModel model(4, f.nb_config());
  const core::TrainReport report =
      core::train_model(model, sampler, sampler.split(), f.small_tc());
  EXPECT_TRUE(params_all_finite(model));
  EXPECT_EQ(report.epochs_run, 2u);
}

// ---- OnlineForecaster degradation paths ------------------------------------

class ConstModel final : public core::ForecastModel {
 public:
  ConstModel(std::size_t horizon, double value)
      : horizon_(horizon), value_(value) {}
  [[nodiscard]] std::string name() const override { return "const"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
    return {};
  }
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window&) override {
    return tape.constant(Matrix(1, 1, 1.0));
  }
  [[nodiscard]] Matrix predict(const data::Window& w) override {
    return Matrix(w.x_obs.front().rows(), horizon_, value_);
  }

 private:
  std::size_t horizon_;
  double value_;
};

class ThrowingModel final : public core::ForecastModel {
 public:
  [[nodiscard]] std::string name() const override { return "throwing"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
    return {};
  }
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window&) override {
    return tape.constant(Matrix(1, 1, 1.0));
  }
  [[nodiscard]] Matrix predict(const data::Window&) override {
    throw std::runtime_error("primary model exploded");
  }
};

class WrongShapeModel final : public core::ForecastModel {
 public:
  [[nodiscard]] std::string name() const override { return "wrong-shape"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
    return {};
  }
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window&) override {
    return tape.constant(Matrix(1, 1, 1.0));
  }
  [[nodiscard]] Matrix predict(const data::Window&) override {
    return Matrix(2, 2, 1.0);
  }
};

struct OnlineRig {
  data::TrafficDataset ds = tiny_dataset(60);
  data::ZScoreNormalizer nz{ds, ds.num_timesteps() * 7 / 10};

  core::OnlineForecaster make(core::ForecastModel& model) {
    return core::OnlineForecaster(model, nz, ds.num_nodes(),
                                  ds.num_features(), /*lookback=*/6,
                                  /*horizon=*/3, ds.steps_per_day);
  }
};

TEST(OnlineRobust, SanitizesNonFiniteReadings) {
  OnlineRig rig;
  ConstModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  Matrix v(5, 4, 50.0);
  Matrix m(5, 4, 1.0);
  v(0, 0) = kNaN;
  v(1, 2) = std::numeric_limits<double>::infinity();
  online.push_reading(v, m);
  const core::HealthReport h = online.health();
  EXPECT_EQ(h.sanitized_entries, 2u);
  EXPECT_DOUBLE_EQ(h.buffer_coverage, 18.0 / 20.0);
  EXPECT_FALSE(online.forecast().has_non_finite());
}

TEST(OnlineRobust, CoercesMalformedMaskEntries) {
  OnlineRig rig;
  ConstModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  Matrix v(5, 4, 50.0);
  Matrix m(5, 4, 1.0);
  m(0, 0) = 0.7;   // not in {0,1} but > 0.5 -> treated observed
  m(1, 1) = -3.0;  // -> treated missing
  m(2, 2) = kNaN;  // -> treated missing
  online.push_reading(v, m);
  const core::HealthReport h = online.health();
  EXPECT_EQ(h.coerced_mask_entries, 3u);
  EXPECT_DOUBLE_EQ(h.buffer_coverage, 18.0 / 20.0);
}

TEST(OnlineRobust, StuckSensorFlaggedDemotedAndRecovers) {
  OnlineRig rig;
  ConstModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  online.set_stuck_threshold(3);
  Matrix m(5, 4, 1.0);
  for (std::size_t tick = 0; tick < 6; ++tick) {
    Matrix v(5, 4, 40.0 + static_cast<double>(tick));  // others jitter
    v(2, 0) = 42.0;  // node 2's register is frozen
    online.push_reading(v, m);
  }
  core::HealthReport h = online.health();
  EXPECT_GE(h.stuck_demotions, 3u);  // flagged from the 3rd repeat on
  ASSERT_EQ(h.suspect_sensors.size(), 1u);
  EXPECT_EQ(h.suspect_sensors[0], 2u);
  EXPECT_FALSE(online.forecast().has_non_finite());

  // The register thaws: the flag clears on the next changed reading.
  Matrix v(5, 4, 50.0);
  v(2, 0) = 17.0;
  online.push_reading(v, m);
  h = online.health();
  EXPECT_TRUE(h.suspect_sensors.empty());
}

TEST(OnlineRobust, FallsBackWhenPrimaryGoesNonFinite) {
  OnlineRig rig;
  ConstModel primary(3, kNaN);
  ConstModel fallback(3, 0.5);
  core::OnlineForecaster online = rig.make(primary);
  online.set_fallback(&fallback);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  const Matrix pred = online.forecast();
  EXPECT_FALSE(pred.has_non_finite());
  EXPECT_DOUBLE_EQ(pred(0, 0), rig.nz.denormalize(0.5, 0));
  const core::HealthReport h = online.health();
  EXPECT_EQ(h.model_forecasts, 0u);
  EXPECT_EQ(h.fallback_forecasts, 1u);
}

TEST(OnlineRobust, FallsBackWhenPrimaryThrows) {
  OnlineRig rig;
  ThrowingModel primary;
  ConstModel fallback(3, 0.25);
  core::OnlineForecaster online = rig.make(primary);
  online.set_fallback(&fallback);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  EXPECT_FALSE(online.forecast().has_non_finite());
  EXPECT_EQ(online.health().fallback_forecasts, 1u);
}

TEST(OnlineRobust, ThrowingPrimaryWithoutFallbackPropagates) {
  OnlineRig rig;
  ThrowingModel primary;
  core::OnlineForecaster online = rig.make(primary);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  EXPECT_THROW((void)online.forecast(), std::runtime_error);
}

TEST(OnlineRobust, ScrubsNonFiniteOutputWithoutFallback) {
  OnlineRig rig;
  ConstModel primary(3, kNaN);
  core::OnlineForecaster online = rig.make(primary);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  const Matrix pred = online.forecast();
  EXPECT_FALSE(pred.has_non_finite());
  // Scrubbed entries land on the historical (denormalized) mean.
  EXPECT_DOUBLE_EQ(pred(0, 0), rig.nz.denormalize(0.0, 0));
  const core::HealthReport h = online.health();
  EXPECT_EQ(h.scrubbed_outputs, 15u);  // 5 nodes x 3 horizon steps
  EXPECT_EQ(h.fallback_forecasts, 1u);
}

TEST(OnlineRobust, WrongShapePrimaryDegradesToFiniteForecast) {
  OnlineRig rig;
  WrongShapeModel primary;
  core::OnlineForecaster online = rig.make(primary);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  const Matrix pred = online.forecast();
  EXPECT_EQ(pred.rows(), 5u);
  EXPECT_EQ(pred.cols(), 3u);
  EXPECT_FALSE(pred.has_non_finite());
  EXPECT_EQ(online.health().fallback_forecasts, 1u);
}

TEST(OnlineRobust, DeadSensorReportedAfterFullBuffer) {
  OnlineRig rig;
  ConstModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  Matrix v(5, 4, 50.0);
  Matrix m(5, 4, 1.0);
  for (std::size_t f = 0; f < 4; ++f) m(3, f) = 0.0;  // node 3 never reports
  for (std::size_t tick = 0; tick < 6; ++tick) {
    Matrix vt = v;
    vt(0, 0) = static_cast<double>(tick);  // keep other nodes moving
    online.push_reading(vt, m);
  }
  const core::HealthReport h = online.health();
  ASSERT_EQ(h.suspect_sensors.size(), 1u);
  EXPECT_EQ(h.suspect_sensors[0], 3u);
}

TEST(OnlineRobust, HealthyStreamReportsNoSuspectsOrFallbacks) {
  OnlineRig rig;
  ConstModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  for (std::size_t t = 0; t < 8; ++t) {
    online.push_reading(rig.ds.truth[t], rig.ds.mask[t]);
  }
  (void)online.forecast();
  const core::HealthReport h = online.health();
  EXPECT_EQ(h.sanitized_entries, 0u);
  EXPECT_EQ(h.coerced_mask_entries, 0u);
  EXPECT_EQ(h.stuck_demotions, 0u);
  EXPECT_EQ(h.fallback_forecasts, 0u);
  EXPECT_EQ(h.scrubbed_outputs, 0u);
  EXPECT_EQ(h.model_forecasts, 1u);
  EXPECT_TRUE(h.suspect_sensors.empty());
}

// ---- forecast memoization ----------------------------------------------------

/// ConstModel that counts predict() calls, so tests can see cache hits.
class CountingModel final : public core::ForecastModel {
 public:
  CountingModel(std::size_t horizon, double value)
      : horizon_(horizon), value_(value) {}
  [[nodiscard]] std::string name() const override { return "counting"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
    return {};
  }
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window&) override {
    return tape.constant(Matrix(1, 1, 1.0));
  }
  [[nodiscard]] Matrix predict(const data::Window& w) override {
    ++calls;
    return Matrix(w.x_obs.front().rows(), horizon_, value_);
  }
  std::size_t calls = 0;

 private:
  std::size_t horizon_;
  double value_;
};

TEST(OnlineMemo, RepeatForecastsHitCacheExactly) {
  OnlineRig rig;
  CountingModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  const Matrix first = online.forecast();
  const Matrix second = online.forecast();
  const Matrix third = online.forecast();
  EXPECT_EQ(model.calls, 1u);  // one model run serves all three
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  const core::HealthReport h = online.health();
  EXPECT_EQ(h.model_forecasts, 1u);
  EXPECT_EQ(h.memoized_forecasts, 2u);
}

TEST(OnlineMemo, IngestInvalidates) {
  OnlineRig rig;
  CountingModel model(3, 0.5);
  core::OnlineForecaster online = rig.make(model);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  (void)online.forecast();
  online.push_reading(rig.ds.truth[1], rig.ds.mask[1]);
  (void)online.forecast();
  EXPECT_EQ(model.calls, 2u);
  online.push_gap();  // a gap is an ingest too
  (void)online.forecast();
  EXPECT_EQ(model.calls, 3u);
  EXPECT_EQ(online.health().memoized_forecasts, 0u);
}

TEST(OnlineMemo, ConfigChangesInvalidate) {
  OnlineRig rig;
  CountingModel model(3, 0.5);
  ConstModel fallback(3, 0.25);
  core::OnlineForecaster online = rig.make(model);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  (void)online.forecast();
  online.set_fallback(&fallback);  // the robust path may resolve differently
  (void)online.forecast();
  EXPECT_EQ(model.calls, 2u);
  online.set_stuck_threshold(7);
  (void)online.forecast();
  EXPECT_EQ(model.calls, 3u);
}

TEST(OnlineMemo, ThrowingForecastIsNeverCached) {
  OnlineRig rig;
  ThrowingModel primary;
  core::OnlineForecaster online = rig.make(primary);
  online.push_reading(rig.ds.truth[0], rig.ds.mask[0]);
  EXPECT_THROW((void)online.forecast(), std::runtime_error);
  // The failure was not memoized: the next call reaches the model again
  // (and throws again) instead of replaying a cached error or stale value.
  EXPECT_THROW((void)online.forecast(), std::runtime_error);
  EXPECT_EQ(online.health().memoized_forecasts, 0u);
}

// ---- shared serving-side primitives (core/robust, DESIGN.md §15) -----------
//
// These are the ONE implementation behind both OnlineForecaster and
// serve::ForecastServer; the unit tests here pin the exact semantics the
// two serving layers inherit.

TEST(RobustPrimitives, ScrubNonFiniteReplacesAndCounts) {
  Matrix m(2, 2);
  m(0, 0) = 1.5;
  m(0, 1) = std::numeric_limits<double>::quiet_NaN();
  m(1, 0) = -std::numeric_limits<double>::infinity();
  m(1, 1) = 0.0;
  EXPECT_EQ(core::scrub_non_finite(m, 7.0), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
  EXPECT_EQ(core::scrub_non_finite(m), 0u);  // idempotent once clean
}

TEST(RobustPrimitives, SanitizeReadingDemotesAndCoerces) {
  data::TrafficDataset ds = data::generate_pems_like([] {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 3;
    cfg.num_days = 1;
    cfg.steps_per_day = 24;
    return cfg;
  }());
  const data::ZScoreNormalizer norm(ds, ds.num_timesteps());
  Matrix values(3, ds.num_features());
  Matrix mask(3, ds.num_features());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values.data()[i] = 10.0;
    mask.data()[i] = 1.0;
  }
  values(0, 0) = std::numeric_limits<double>::quiet_NaN();  // observed NaN
  mask(1, 0) = 0.7;   // malformed mask entry, still > 0.5 → observed
  mask(2, 0) = -3.0;  // malformed mask entry, ≤ 0.5 → missing
  Matrix normalized(3, ds.num_features());
  Matrix clean(3, ds.num_features());
  const core::SanitizeCounts c =
      core::sanitize_reading(values, mask, norm, normalized, clean);
  EXPECT_EQ(c.sanitized_entries, 1u);
  EXPECT_EQ(c.coerced_mask_entries, 2u);
  EXPECT_DOUBLE_EQ(clean(0, 0), 0.0);  // NaN value demoted
  EXPECT_DOUBLE_EQ(normalized(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(clean(1, 0), 1.0);  // 0.7 coerced to observed
  EXPECT_DOUBLE_EQ(clean(2, 0), 0.0);  // -3 coerced to missing
  EXPECT_FALSE(normalized.has_non_finite());
}

TEST(RobustPrimitives, StuckDetectorFlagsRunsAndRecovers) {
  core::StuckSensorDetector det(2, /*threshold=*/3);
  Matrix v(2, 1), m(2, 1);
  auto feed = [&](double a, double b) {
    v(0, 0) = a;
    v(1, 0) = b;
    m(0, 0) = m(1, 0) = 1.0;
    return det.observe_and_demote(v, m);
  };
  EXPECT_EQ(feed(5.0, 1.0), 0u);
  EXPECT_EQ(feed(5.0, 2.0), 0u);
  EXPECT_EQ(feed(5.0, 3.0), 1u);  // node 0 hit 3 identical readings
  EXPECT_TRUE(det.flags()[0]);
  EXPECT_FALSE(det.flags()[1]);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);  // demoted: row zeroed in the mask
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
  // The value moving again un-flags the node immediately.
  EXPECT_EQ(feed(6.0, 4.0), 0u);
  EXPECT_FALSE(det.flags()[0]);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(RobustPrimitives, StuckDetectorThresholdZeroDisables) {
  core::StuckSensorDetector det(1, /*threshold=*/0);
  Matrix v(1, 1), m(1, 1);
  for (int k = 0; k < 50; ++k) {
    v(0, 0) = 9.0;
    m(0, 0) = 1.0;
    EXPECT_EQ(det.observe_and_demote(v, m), 0u);
  }
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(RobustPrimitives, FindSuspectSensorsMergesStuckAndDead) {
  std::deque<Matrix> masks;
  for (int t = 0; t < 3; ++t) {
    Matrix m(3, 1);
    m(0, 0) = 1.0;  // node 0 observed
    m(1, 0) = 0.0;  // node 1 dead across the whole buffer
    m(2, 0) = t == 1 ? 1.0 : 0.0;  // node 2 sporadic but alive
    masks.push_back(m);
  }
  const std::vector<bool> stuck = {true, false, false};
  const auto full = core::find_suspect_sensors(stuck, masks, 3, true);
  EXPECT_EQ(full, (std::vector<std::size_t>{0, 1}));
  // A half-warm buffer says nothing about death: only stuck flags survive.
  const auto warm = core::find_suspect_sensors(stuck, masks, 3, false);
  EXPECT_EQ(warm, (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace rihgcn
