// Tier-2 city-scale smoke test (DESIGN.md §13, ISSUE acceptance gate): a
// miniature but REAL run at N = 16384 sensors — sparse k-NN graph
// construction (pruned DTW temporal graphs, coordinate k-NN spatial graph),
// partitioned Cluster-GCN training for two epochs, and a forecast — under a
// wall-clock budget and a peak-RSS bound that a single dense N x N double
// matrix (2 GiB) would blow through on its own.
//
// Env knobs:
//   RIHGCN_SCALE_NODES      — node count (default 16384)
//   RIHGCN_SCALE_BUDGET_SEC — wall-clock cap in seconds (default 900)
//   RIHGCN_SCALE_RSS_MB     — peak-RSS cap in MiB (default 6144)
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/windows.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::size_t peak_rss_mib() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) / 1024;  // linux: KiB
}

// A city-scale dataset built WITHOUT any N x N intermediate: random sensor
// coordinates, diurnal speeds in a few phase groups, deterministic ~15%
// MCAR-style missingness. geo_distances stays empty so the sparse pipeline
// must take the coordinate k-NN path.
data::TrafficDataset make_city(std::size_t n, std::size_t days,
                               std::size_t steps_per_day) {
  Rng rng(12345);
  data::TrafficDataset ds;
  ds.name = "city16k";
  ds.steps_per_day = steps_per_day;
  ds.coords = rng.uniform_matrix(n, 2, -30.0, 30.0);
  const std::size_t total = days * steps_per_day;
  ds.truth.reserve(total);
  ds.mask.reserve(total);
  // Per-node personality from a cheap hash of the index (no O(N) state).
  const auto phase_of = [](std::size_t i) {
    return 0.9 * static_cast<double>(i % 5);
  };
  Rng mask_rng(777);
  for (std::size_t t = 0; t < total; ++t) {
    const double hour = 24.0 * static_cast<double>(t % steps_per_day) /
                        static_cast<double>(steps_per_day);
    Matrix x(n, 1);
    Matrix m(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      const double base = 55.0 + 10.0 * std::sin(0.26 * hour + phase_of(i));
      x(i, 0) = base + 2.0 * std::sin(static_cast<double>(i) * 0.013);
      m(i, 0) = mask_rng.uniform(0.0, 1.0) < 0.15 ? 0.0 : 1.0;
    }
    ds.truth.push_back(std::move(x));
    ds.mask.push_back(std::move(m));
  }
  ds.validate();
  return ds;
}

TEST(CityScale, TrainAndForecastAt16kNodes) {
  const std::size_t n = env_or("RIHGCN_SCALE_NODES", 16384);
  const std::size_t budget_sec = env_or("RIHGCN_SCALE_BUDGET_SEC", 900);
  const std::size_t rss_cap_mib = env_or("RIHGCN_SCALE_RSS_MB", 6144);
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_sec = [&t0]() {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  const std::size_t steps_per_day = 24;
  data::TrafficDataset ds = make_city(n, /*days=*/2, steps_per_day);
  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  std::printf("[scale] dataset built: N=%zu T=%zu rss=%zu MiB (%llds)\n", n,
              ds.num_timesteps(), peak_rss_mib(),
              static_cast<long long>(elapsed_sec()));

  // Sparse k-NN graphs: coordinate spatial graph + pruned-DTW temporal
  // graphs. knn > 0 guarantees no dense N x N matrix exists anywhere.
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 12;
  gcfg.knn = 8;
  gcfg.prune_dtw = true;
  gcfg.dtw_band = 3;
  Rng rng(9);
  core::HeterogeneousGraphs graphs(ds, train_end, gcfg, rng);
  ASSERT_TRUE(graphs.sparse_mode());
  ASSERT_EQ(graphs.num_nodes(), n);
  const ts::KnnStats& st = graphs.temporal_knn_stats();
  std::printf(
      "[scale] graphs built: geo nnz=%zu, dtw pairs=%zu kim=%zu keogh=%zu "
      "started=%zu abandoned=%zu, rss=%zu MiB (%llds)\n",
      graphs.geographic_adjacency_csr().nnz(), st.pairs, st.lb_kim_pruned,
      st.lb_keogh_pruned, st.dtw_started, st.dtw_abandoned, peak_rss_mib(),
      static_cast<long long>(elapsed_sec()));
  // Pruning must carry most of the load at this scale.
  EXPECT_LT(st.dtw_started, st.pairs / 2);

  core::RihgcnConfig mc;
  mc.lookback = 4;
  mc.horizon = 2;
  mc.gcn_dim = 4;
  mc.lstm_dim = 4;
  mc.cheb_order = 2;
  mc.bidirectional = false;
  mc.use_consistency = false;
  core::RihgcnModel model(graphs, n, ds.num_features(), mc);

  data::WindowSampler sampler(ds, mc.lookback, mc.horizon);
  data::SplitIndices split = sampler.split(0.7, 0.15);
  ASSERT_FALSE(split.train.empty());

  core::TrainConfig tc;
  tc.max_epochs = 2;
  tc.batch_size = 2;
  tc.max_train_windows = 4;
  tc.max_val_windows = 2;
  tc.num_clusters = 16;
  tc.num_threads = std::min<std::size_t>(
      4, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  tc.patience = 100;  // never early-stop inside 2 epochs
  const core::TrainReport report =
      core::train_model(model, sampler, split, tc);
  EXPECT_EQ(report.epochs_run, 2u);
  EXPECT_EQ(model.num_clusters(), 16u);
  for (const double l : report.train_losses) EXPECT_TRUE(std::isfinite(l));
  std::printf("[scale] trained 2 epochs (%zu clusters): loss %.4f -> %.4f, "
              "rss=%zu MiB (%llds)\n",
              model.num_clusters(), report.train_losses.front(),
              report.train_losses.back(), peak_rss_mib(),
              static_cast<long long>(elapsed_sec()));

  const data::Window w = sampler.make_window(split.test.empty()
                                                 ? split.train.back()
                                                 : split.test.front());
  const Matrix pred = model.predict(w);
  ASSERT_EQ(pred.rows(), n);
  ASSERT_EQ(pred.cols(), mc.horizon);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ASSERT_TRUE(std::isfinite(pred.data()[i]));
  }

  const std::size_t rss = peak_rss_mib();
  const long long secs = elapsed_sec();
  std::printf("[scale] forecast done: peak rss=%zu MiB, wall=%llds "
              "(caps: %zu MiB, %zus)\n",
              rss, secs, rss_cap_mib, budget_sec);
  EXPECT_LT(rss, rss_cap_mib);
  EXPECT_LT(static_cast<std::size_t>(secs), budget_sec);
}

}  // namespace
}  // namespace rihgcn
