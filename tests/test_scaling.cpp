// Tier-2 timed thread-scaling regression (DESIGN.md §12).
//
// BENCH_micro.json once showed train_step_sparse going FLAT with threads
// (15.0ms @1T vs 16.1ms @4T): every batch spawned fresh std::threads whose
// nested kernels then fought over the global pool. The fix — one persistent
// crew per training run, per-worker batch granularity, coarser kernel grains
// — is locked in here with wall-clock assertions, so a future change that
// quietly serializes the batch path fails a test instead of a paper table.
//
// Timed tests are inherently noisy, so these are tier-2 (not in the always-on
// gate), they skip on hosts with < 4 cores, they use best-of-K wall times,
// and the required speedup is deliberately below the ideal 4x:
//   RIHGCN_MIN_SCALING (default 1.8) — min required @4T-over-@1T speedup.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "autodiff/tape.hpp"
#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "data/windows.hpp"
#include "tensor/matrix.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

double min_scaling_factor() {
  const char* env = std::getenv("RIHGCN_MIN_SCALING");
  if (env == nullptr || *env == '\0') return 1.8;
  return std::strtod(env, nullptr);
}

// Best-of-K wall time: the minimum is the least-interference estimate, which
// is what a scaling ratio should be built from (noise only inflates samples).
template <typename Fn>
double best_of_sec(const Fn& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

bool enough_cores() { return std::thread::hardware_concurrency() >= 4; }

TEST(ThreadScaling, DenseMatmulScalesAcrossCores) {
  if (!enough_cores()) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  // Default dispatch tuning on purpose: this measures the production path,
  // thresholds included. 384^3 ≈ 5.7e7 flops is far above min_matmul_flops.
  Rng rng(7);
  const Matrix a = rng.normal_matrix(384, 384, 1.0);
  const Matrix b = rng.normal_matrix(384, 384, 1.0);
  const auto work = [&] {
    Matrix out(384, 384);
    matmul_accumulate(a, b, out);
  };
  ThreadPool::set_global_threads(1);
  work();  // warmup (page-in, frequency ramp)
  const double t1 = best_of_sec(work, 3);
  ThreadPool::set_global_threads(4);
  work();
  const double t4 = best_of_sec(work, 3);
  ThreadPool::set_global_threads(0);
  const double speedup = t1 / t4;
  EXPECT_GE(speedup, min_scaling_factor())
      << "matmul @1T " << t1 * 1e3 << "ms vs @4T " << t4 * 1e3 << "ms";
}

// Small-but-real RIHGCN environment (same construction as the trainer
// tests), sized so one training_loss forward/backward is a few ms of work.
struct ScalingFixture {
  data::TrafficDataset ds;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;

  ScalingFixture() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 48;
    cfg.num_days = 2;
    cfg.steps_per_day = 96;
    ds = data::generate_pems_like(cfg);
    Rng rng(21);
    data::inject_mcar(ds, 0.3, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 12, 3);
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 2;
    graphs =
        std::make_unique<core::HeterogeneousGraphs>(ds, train_end, gcfg, rng);
    core::RihgcnConfig mcfg;
    mcfg.lookback = 12;
    mcfg.horizon = 3;
    mcfg.gcn_dim = 16;
    mcfg.lstm_dim = 32;
    mcfg.seed = 77;
    model = std::make_unique<core::RihgcnModel>(*graphs, ds.num_nodes(),
                                                ds.num_features(), mcfg);
  }
};

TEST(ThreadScaling, BatchGradientsScaleAcrossCores) {
  if (!enough_cores()) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  ScalingFixture fx;
  const std::vector<std::size_t> idx{10, 20, 30, 40, 50, 60, 70, 80};

  // Mirrors core/trainer.cpp parallel_batch_gradients: persistent crew,
  // chunk w IS worker w, per-worker arena tape + sink, strided slice.
  const auto run_batch = [&](ThreadPool& crew, std::size_t workers,
                             std::vector<std::unique_ptr<ad::Tape>>& tapes) {
    std::vector<ad::Tape::GradSink> sinks(workers);
    crew.parallel_for(0, workers, 1, [&](std::size_t w, std::size_t) {
      for (std::size_t b = w; b < idx.size(); b += workers) {
        ad::Tape& tape = *tapes[w];
        tape.reset();
        ad::Var loss =
            fx.model->training_loss(tape, fx.sampler->make_window(idx[b]));
        tape.backward_into(loss, sinks[w]);
      }
    });
    for (auto& sink : sinks) {
      for (auto& [param, grad] : sink) param->grad() += grad;
    }
  };

  ThreadPool crew1(1);
  ThreadPool crew4(4);
  std::vector<std::unique_ptr<ad::Tape>> tapes;
  for (std::size_t w = 0; w < 4; ++w) {
    tapes.push_back(std::make_unique<ad::Tape>());
  }
  const auto serial = [&] {
    for (ad::Parameter* p : fx.model->parameters()) p->zero_grad();
    run_batch(crew1, 1, tapes);
  };
  const auto threaded = [&] {
    for (ad::Parameter* p : fx.model->parameters()) p->zero_grad();
    run_batch(crew4, 4, tapes);
  };
  serial();  // warmup: arena tapes size themselves, caches fill
  threaded();
  const double t1 = best_of_sec(serial, 3);
  const double t4 = best_of_sec(threaded, 3);
  const double speedup = t1 / t4;
  EXPECT_GE(speedup, min_scaling_factor())
      << "batch gradients @1T " << t1 * 1e3 << "ms vs @4T " << t4 * 1e3
      << "ms";
}

}  // namespace
}  // namespace rihgcn
