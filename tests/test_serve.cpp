// Serving subsystem (DESIGN.md §14): EventLoop + ForecastServer.
//
//  * EventLoopTest.*   — FIFO posts, (deadline, id) timer ordering, cancel,
//    reentrant scheduling from inside handlers.
//  * ServeBatch.*      — micro-batching admission queue: flush at max_batch,
//    flush at max_delay_us, per-request windows match OnlineForecaster-style
//    single-stream forecasts.
//  * ServeCoalesce.*   — concurrent queries for the same (stream, ingest
//    version) share one engine invocation; an ingest in between splits them.
//  * ServeSnapshot.*   — publish() swaps retrained weights under concurrent
//    query load with zero dropped and zero non-finite responses. Runs under
//    TSan via tools/run_tsan.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/hetero_graphs.hpp"
#include "core/online.hpp"
#include "core/rihgcn.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "serve/event_loop.hpp"
#include "serve/server.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

// ---- EventLoop -------------------------------------------------------------

TEST(EventLoopTest, PostsRunFifo) {
  serve::EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.post([&order, i] { order.push_back(i); });
  }
  loop.post([&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, TimersFireInDeadlineThenRegistrationOrder) {
  serve::EventLoop loop;
  std::vector<int> order;
  const auto base = serve::EventLoop::Clock::now() +
                    std::chrono::milliseconds(5);
  // Registered out of deadline order; 1 and 2 share a deadline, so they
  // must fire in registration order.
  loop.add_time_handler(base + std::chrono::milliseconds(4),
                        [&order] { order.push_back(3); });
  loop.add_time_handler(base, [&order] { order.push_back(1); });
  loop.add_time_handler(base, [&order] { order.push_back(2); });
  loop.add_time_handler(base - std::chrono::milliseconds(3),
                        [&order] { order.push_back(0); });
  loop.add_time_handler(base + std::chrono::milliseconds(8),
                        [&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventLoopTest, CancelDropsPendingTimer) {
  serve::EventLoop loop;
  std::atomic<int> fired{0};
  const auto id = loop.add_time_handler_after(std::chrono::microseconds(2000),
                                              [&fired] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already gone
  loop.add_time_handler_after(std::chrono::microseconds(4000),
                              [&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(fired.load(), 0);
}

TEST(EventLoopTest, HandlersCanScheduleMoreWork) {
  serve::EventLoop loop;
  std::vector<int> order;
  loop.post([&] {
    order.push_back(0);
    loop.add_time_handler_after(std::chrono::microseconds(500), [&] {
      order.push_back(1);
      loop.post([&] {
        order.push_back(2);
        loop.stop();
      });
    });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoopTest, StartRunsOnBackgroundThread) {
  serve::EventLoop loop;
  std::promise<void> ran;
  loop.start();
  loop.post([&ran] { ran.set_value(); });
  ran.get_future().wait();
  EXPECT_TRUE(loop.running());
  loop.stop();
}

// ---- ForecastServer fixtures -----------------------------------------------

struct ServeFixture {
  data::TrafficDataset ds;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
};

ServeFixture make_fixture(std::size_t seed = 11) {
  ServeFixture s;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = seed;
  s.ds = data::generate_pems_like(cfg);
  Rng rng(5);
  data::inject_mcar(s.ds, 0.3, rng);
  const std::size_t train_end = s.ds.num_timesteps() * 7 / 10;
  s.normalizer = std::make_unique<data::ZScoreNormalizer>(s.ds, train_end);
  s.normalizer->normalize(s.ds);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 24;
  s.graphs = std::make_unique<core::HeterogeneousGraphs>(s.ds, train_end,
                                                         gcfg, rng);
  core::RihgcnConfig mc;
  mc.lookback = 4;
  mc.horizon = 3;
  mc.gcn_dim = 4;
  mc.lstm_dim = 4;
  mc.cheb_order = 2;
  s.model = std::make_unique<core::RihgcnModel>(*s.graphs, s.ds.num_nodes(),
                                                s.ds.num_features(), mc);
  return s;
}

/// One original-units reading (values, mask) taken from the dataset, but
/// denormalized so the server's ingest normalization round-trips it.
std::pair<Matrix, Matrix> reading_at(const ServeFixture& s, std::size_t t) {
  Matrix values(s.ds.num_nodes(), s.ds.num_features());
  Matrix mask(s.ds.num_nodes(), s.ds.num_features());
  for (std::size_t i = 0; i < values.rows(); ++i) {
    for (std::size_t f = 0; f < values.cols(); ++f) {
      mask(i, f) = s.ds.mask[t](i, f);
      values(i, f) =
          s.normalizer->denormalize(s.ds.truth[t](i, f), f) * mask(i, f);
    }
  }
  return {values, mask};
}

// ---- micro-batching --------------------------------------------------------

TEST(ServeBatch, MatchesOnlineForecasterPerStream) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 200;
  serve::ForecastServer server(engine, *s.normalizer, cfg);

  // Reference: the engine through OnlineForecaster's exact window logic.
  core::InferenceEngine ref_engine(*s.model);
  struct EngineAsModel : core::ForecastModel {
    explicit EngineAsModel(core::InferenceEngine& e) : e_(e) {}
    std::string name() const override { return "engine"; }
    std::vector<ad::Parameter*> parameters() override { return {}; }
    ad::Var training_loss(ad::Tape&, const data::Window&) override {
      throw std::logic_error("inference only");
    }
    Matrix predict(const data::Window& w) override { return e_.predict(w); }
    core::InferenceEngine& e_;
  } ref_model(ref_engine);

  const std::size_t num_streams = 3;
  std::vector<std::size_t> ids;
  std::vector<std::unique_ptr<core::OnlineForecaster>> refs;
  for (std::size_t k = 0; k < num_streams; ++k) {
    const std::size_t slot = 5 * k;
    ids.push_back(server.add_stream(slot));
    refs.push_back(std::make_unique<core::OnlineForecaster>(
        ref_model, *s.normalizer, s.ds.num_nodes(), s.ds.num_features(),
        engine->lookback(), engine->horizon(), engine->steps_per_day(),
        slot));
    refs.back()->set_stuck_threshold(0);
  }
  for (std::size_t t = 0; t < 6; ++t) {
    for (std::size_t k = 0; k < num_streams; ++k) {
      auto [values, mask] = reading_at(s, 10 * k + t);
      server.ingest(ids[k], values, mask);
      refs[k]->push_reading(values, mask);
    }
  }
  // All three streams queried back-to-back: batched through shared engine
  // invocations, each result equal to its single-stream reference.
  std::vector<std::future<Matrix>> futs;
  for (std::size_t k = 0; k < num_streams; ++k) {
    futs.push_back(server.forecast_async(ids[k]));
  }
  for (std::size_t k = 0; k < num_streams; ++k) {
    const Matrix got = futs[k].get();
    const Matrix want = refs[k]->forecast();
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.data()[i], want.data()[i]) << "stream " << k;
    }
    EXPECT_FALSE(got.has_non_finite());
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests, num_streams);
  EXPECT_EQ(st.responses, num_streams);
  EXPECT_EQ(st.batched_windows, num_streams);
}

TEST(ServeBatch, FlushesAtMaxBatchWithoutWaitingForTimer) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 60'000'000;  // a timer-based flush would hang the test
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  std::vector<std::size_t> ids;
  for (std::size_t k = 0; k < cfg.max_batch; ++k) {
    ids.push_back(server.add_stream(k));
    auto [values, mask] = reading_at(s, 3 * k);
    server.ingest(ids[k], values, mask);
  }
  std::vector<std::future<Matrix>> futs;
  for (std::size_t id : ids) futs.push_back(server.forecast_async(id));
  for (auto& f : futs) {
    EXPECT_FALSE(f.get().has_non_finite());
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.engine_calls, 1u);  // one shared invocation for all four
  EXPECT_EQ(st.batched_windows, 4u);
}

TEST(ServeBatch, TimerFlushesPartialBatch) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 300;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  // One lone request can never reach max_batch; only the delay timer
  // releases it.
  Matrix got = server.forecast(id);
  EXPECT_EQ(got.rows(), s.ds.num_nodes());
  EXPECT_FALSE(got.has_non_finite());
  EXPECT_EQ(server.stats().engine_calls, 1u);
}

TEST(ServeBatch, ErrorsSurfaceThroughFutures) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ForecastServer server(engine, *s.normalizer, serve::ServeConfig{});
  EXPECT_THROW((void)server.forecast_async(7), std::invalid_argument);
  const std::size_t id = server.add_stream();
  // No readings yet: the failure rides the future, not the caller thread.
  EXPECT_THROW((void)server.forecast(id), std::logic_error);
  Matrix bad(1, 1);
  EXPECT_THROW(server.ingest(id, bad, bad), ShapeError);
}

// ---- coalescing ------------------------------------------------------------

TEST(ServeCoalesce, SameVersionQueriesShareOneWindow) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 2000;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 1);
  server.ingest(id, values, mask);

  std::vector<std::future<Matrix>> futs;
  for (int k = 0; k < 5; ++k) futs.push_back(server.forecast_async(id));
  std::vector<Matrix> results;
  for (auto& f : futs) results.push_back(f.get());
  for (std::size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[k], results[0]);
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 5u);
  EXPECT_EQ(st.responses, 5u);
  EXPECT_EQ(st.engine_calls, 1u);
  EXPECT_EQ(st.batched_windows, 1u);  // five requests, ONE window
  EXPECT_EQ(st.coalesced_requests, 4u);
}

TEST(ServeCoalesce, IngestSplitsCoalescingGenerations) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 2000;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [v0, m0] = reading_at(s, 1);
  server.ingest(id, v0, m0);
  auto f1 = server.forecast_async(id);
  auto f2 = server.forecast_async(id);
  auto [v1, m1] = reading_at(s, 2);
  server.ingest(id, v1, m1);  // bumps the version: no coalescing across it
  auto f3 = server.forecast_async(id);
  const Matrix r1 = f1.get();
  const Matrix r2 = f2.get();
  const Matrix r3 = f3.get();
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r3, r1);  // saw one more reading
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.coalesced_requests, 1u);
  EXPECT_EQ(st.batched_windows, 2u);
}

// ---- snapshot swap under load ----------------------------------------------

TEST(ServeSnapshot, PublishValidatesDimensions) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ForecastServer server(engine, *s.normalizer, serve::ServeConfig{});
  core::RihgcnConfig mc;
  mc.lookback = 4;
  mc.horizon = 5;  // horizon mismatch
  mc.gcn_dim = 4;
  mc.lstm_dim = 4;
  mc.cheb_order = 2;
  core::RihgcnModel other(*s.graphs, s.ds.num_nodes(), s.ds.num_features(),
                          mc);
  EXPECT_THROW(
      server.publish(std::make_shared<core::InferenceEngine>(other)),
      std::invalid_argument);
  EXPECT_THROW(server.publish(nullptr), std::invalid_argument);
  EXPECT_EQ(server.stats().snapshot_swaps, 0u);
}

// The acceptance-criteria test, run under TSan by tools/run_tsan.sh: client
// threads hammer forecasts while a "retrain" thread keeps publishing
// perturbed engines. Every request must be answered (zero dropped) with
// finite values (zero non-finite), and at least one response must reflect
// post-swap weights.
TEST(ServeSnapshot, SwapUnderLoad) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 100;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 4);
  server.ingest(id, values, mask);
  const Matrix baseline = server.forecast(id);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 40;
  constexpr std::size_t kSwaps = 6;
  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> non_finite{0};
  std::atomic<std::size_t> changed{0};

  std::thread retrainer([&] {
    for (std::size_t r = 0; r < kSwaps; ++r) {
      for (ad::Parameter* p : s.model->parameters()) {
        Matrix& v = p->value();
        for (std::size_t i = 0; i < v.size(); ++i) {
          v.data()[i] += 0.01 * static_cast<double>(r + 1);
        }
      }
      server.publish(std::make_shared<core::InferenceEngine>(*s.model));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const Matrix got = server.forecast(id);
        ++answered;
        if (got.has_non_finite()) ++non_finite;
        if (got != baseline) ++changed;
      }
    });
  }
  for (auto& t : clients) t.join();
  retrainer.join();
  // Fence: publish() posts its swap to the loop, so one more round-trip
  // through the (FIFO) loop queue guarantees every swap has been applied
  // before the counters below are read.
  (void)server.forecast(id);

  EXPECT_EQ(answered.load(), kClients * kPerClient);  // zero dropped
  EXPECT_EQ(non_finite.load(), 0u);
  EXPECT_GT(changed.load(), 0u);  // retrained weights actually served
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.snapshot_swaps, kSwaps);
  EXPECT_EQ(st.responses, kClients * kPerClient + 2);
  // Coalescing + batching under concurrency: strictly fewer engine calls
  // than requests.
  EXPECT_LT(st.engine_calls, st.requests);
}

}  // namespace
}  // namespace rihgcn
