// Serving subsystem (DESIGN.md §14): EventLoop + ForecastServer.
//
//  * EventLoopTest.*   — FIFO posts, (deadline, id) timer ordering, cancel,
//    reentrant scheduling from inside handlers.
//  * ServeBatch.*      — micro-batching admission queue: flush at max_batch,
//    flush at max_delay_us, per-request windows match OnlineForecaster-style
//    single-stream forecasts.
//  * ServeCoalesce.*   — concurrent queries for the same (stream, ingest
//    version) share one engine invocation; an ingest in between splits them.
//  * ServeSnapshot.*   — publish() swaps retrained weights under concurrent
//    query load with zero dropped and zero non-finite responses. Runs under
//    TSan via tools/run_tsan.sh.
//  * ServeShutdown.*   — drain()/destruction delivers a typed outcome to
//    every request (never a broken promise), including a racy shutdown storm.
//  * ServeOverload.*   — bounded admission: reject-new and shed-oldest
//    policies, plus the TSan-covered overload storm against a slow, faulty
//    engine (sheds + deadline expiries counted, zero non-finite, zero hangs,
//    recovery once the faults stop).
//  * ServeDeadline.*   — per-request deadlines fail DEADLINE_EXCEEDED before
//    consuming a batch slot; explicit 0 overrides the config default.
//  * ServeBreaker.*    — engine circuit breaker: opens after K consecutive
//    failures, serves from per-stream fallback (last-good, scrub-to-mean,
//    all-mean) while open, half-open probe closes it.
//  * ServePublish.*    — canary-gated publish quarantines a poisoned
//    candidate without perturbing the serving snapshot.
//  * ExecPool.*        — the §16 engine worker pool: per-worker FIFO order,
//    drain-on-destruction, strict RIHGCN_SERVE_WORKERS env parsing.
//  * ServePool.*       — pooled flush execution: bitwise parity with the
//    inline flush at K = 1/2/4 (under coalescing and mid-flight publish),
//    breaker choreography through the dispatch gate, drain with a flush in
//    flight, and the TSan-covered worker/publisher/drain storm with exact
//    counter accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/hetero_graphs.hpp"
#include "core/online.hpp"
#include "core/rihgcn.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "serve/error.hpp"
#include "serve/event_loop.hpp"
#include "serve/exec_pool.hpp"
#include "serve/faulty_engine.hpp"
#include "serve/server.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

// ---- EventLoop -------------------------------------------------------------

TEST(EventLoopTest, PostsRunFifo) {
  serve::EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.post([&order, i] { order.push_back(i); });
  }
  loop.post([&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, TimersFireInDeadlineThenRegistrationOrder) {
  serve::EventLoop loop;
  std::vector<int> order;
  const auto base = serve::EventLoop::Clock::now() +
                    std::chrono::milliseconds(5);
  // Registered out of deadline order; 1 and 2 share a deadline, so they
  // must fire in registration order.
  loop.add_time_handler(base + std::chrono::milliseconds(4),
                        [&order] { order.push_back(3); });
  loop.add_time_handler(base, [&order] { order.push_back(1); });
  loop.add_time_handler(base, [&order] { order.push_back(2); });
  loop.add_time_handler(base - std::chrono::milliseconds(3),
                        [&order] { order.push_back(0); });
  loop.add_time_handler(base + std::chrono::milliseconds(8),
                        [&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventLoopTest, CancelDropsPendingTimer) {
  serve::EventLoop loop;
  std::atomic<int> fired{0};
  const auto id = loop.add_time_handler_after(std::chrono::microseconds(2000),
                                              [&fired] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already gone
  loop.add_time_handler_after(std::chrono::microseconds(4000),
                              [&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(fired.load(), 0);
}

TEST(EventLoopTest, HandlersCanScheduleMoreWork) {
  serve::EventLoop loop;
  std::vector<int> order;
  loop.post([&] {
    order.push_back(0);
    loop.add_time_handler_after(std::chrono::microseconds(500), [&] {
      order.push_back(1);
      loop.post([&] {
        order.push_back(2);
        loop.stop();
      });
    });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoopTest, StartRunsOnBackgroundThread) {
  serve::EventLoop loop;
  std::promise<void> ran;
  loop.start();
  loop.post([&ran] { ran.set_value(); });
  ran.get_future().wait();
  EXPECT_TRUE(loop.running());
  loop.stop();
}

// ---- ForecastServer fixtures -----------------------------------------------

struct ServeFixture {
  data::TrafficDataset ds;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
};

ServeFixture make_fixture(std::size_t seed = 11) {
  ServeFixture s;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = seed;
  s.ds = data::generate_pems_like(cfg);
  Rng rng(5);
  data::inject_mcar(s.ds, 0.3, rng);
  const std::size_t train_end = s.ds.num_timesteps() * 7 / 10;
  s.normalizer = std::make_unique<data::ZScoreNormalizer>(s.ds, train_end);
  s.normalizer->normalize(s.ds);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 24;
  s.graphs = std::make_unique<core::HeterogeneousGraphs>(s.ds, train_end,
                                                         gcfg, rng);
  core::RihgcnConfig mc;
  mc.lookback = 4;
  mc.horizon = 3;
  mc.gcn_dim = 4;
  mc.lstm_dim = 4;
  mc.cheb_order = 2;
  s.model = std::make_unique<core::RihgcnModel>(*s.graphs, s.ds.num_nodes(),
                                                s.ds.num_features(), mc);
  return s;
}

/// One original-units reading (values, mask) taken from the dataset, but
/// denormalized so the server's ingest normalization round-trips it.
std::pair<Matrix, Matrix> reading_at(const ServeFixture& s, std::size_t t) {
  Matrix values(s.ds.num_nodes(), s.ds.num_features());
  Matrix mask(s.ds.num_nodes(), s.ds.num_features());
  for (std::size_t i = 0; i < values.rows(); ++i) {
    for (std::size_t f = 0; f < values.cols(); ++f) {
      mask(i, f) = s.ds.mask[t](i, f);
      values(i, f) =
          s.normalizer->denormalize(s.ds.truth[t](i, f), f) * mask(i, f);
    }
  }
  return {values, mask};
}

// ---- micro-batching --------------------------------------------------------

TEST(ServeBatch, MatchesOnlineForecasterPerStream) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 200;
  serve::ForecastServer server(engine, *s.normalizer, cfg);

  // Reference: the engine through OnlineForecaster's exact window logic.
  core::InferenceEngine ref_engine(*s.model);
  struct EngineAsModel : core::ForecastModel {
    explicit EngineAsModel(core::InferenceEngine& e) : e_(e) {}
    std::string name() const override { return "engine"; }
    std::vector<ad::Parameter*> parameters() override { return {}; }
    ad::Var training_loss(ad::Tape&, const data::Window&) override {
      throw std::logic_error("inference only");
    }
    Matrix predict(const data::Window& w) override { return e_.predict(w); }
    core::InferenceEngine& e_;
  } ref_model(ref_engine);

  const std::size_t num_streams = 3;
  std::vector<std::size_t> ids;
  std::vector<std::unique_ptr<core::OnlineForecaster>> refs;
  for (std::size_t k = 0; k < num_streams; ++k) {
    const std::size_t slot = 5 * k;
    ids.push_back(server.add_stream(slot));
    refs.push_back(std::make_unique<core::OnlineForecaster>(
        ref_model, *s.normalizer, s.ds.num_nodes(), s.ds.num_features(),
        engine->lookback(), engine->horizon(), engine->steps_per_day(),
        slot));
    refs.back()->set_stuck_threshold(0);
  }
  for (std::size_t t = 0; t < 6; ++t) {
    for (std::size_t k = 0; k < num_streams; ++k) {
      auto [values, mask] = reading_at(s, 10 * k + t);
      server.ingest(ids[k], values, mask);
      refs[k]->push_reading(values, mask);
    }
  }
  // All three streams queried back-to-back: batched through shared engine
  // invocations, each result equal to its single-stream reference.
  std::vector<std::future<Matrix>> futs;
  for (std::size_t k = 0; k < num_streams; ++k) {
    futs.push_back(server.forecast_async(ids[k]));
  }
  for (std::size_t k = 0; k < num_streams; ++k) {
    const Matrix got = futs[k].get();
    const Matrix want = refs[k]->forecast();
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.data()[i], want.data()[i]) << "stream " << k;
    }
    EXPECT_FALSE(got.has_non_finite());
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests, num_streams);
  EXPECT_EQ(st.responses, num_streams);
  EXPECT_EQ(st.batched_windows, num_streams);
}

TEST(ServeBatch, FlushesAtMaxBatchWithoutWaitingForTimer) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 60'000'000;  // a timer-based flush would hang the test
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  std::vector<std::size_t> ids;
  for (std::size_t k = 0; k < cfg.max_batch; ++k) {
    ids.push_back(server.add_stream(k));
    auto [values, mask] = reading_at(s, 3 * k);
    server.ingest(ids[k], values, mask);
  }
  std::vector<std::future<Matrix>> futs;
  for (std::size_t id : ids) futs.push_back(server.forecast_async(id));
  for (auto& f : futs) {
    EXPECT_FALSE(f.get().has_non_finite());
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.engine_calls, 1u);  // one shared invocation for all four
  EXPECT_EQ(st.batched_windows, 4u);
}

TEST(ServeBatch, TimerFlushesPartialBatch) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 300;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  // One lone request can never reach max_batch; only the delay timer
  // releases it.
  Matrix got = server.forecast(id);
  EXPECT_EQ(got.rows(), s.ds.num_nodes());
  EXPECT_FALSE(got.has_non_finite());
  EXPECT_EQ(server.stats().engine_calls, 1u);
}

TEST(ServeBatch, ErrorsSurfaceThroughFutures) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ForecastServer server(engine, *s.normalizer, serve::ServeConfig{});
  EXPECT_THROW((void)server.forecast_async(7), std::invalid_argument);
  const std::size_t id = server.add_stream();
  // No readings yet: the failure rides the future, not the caller thread.
  EXPECT_THROW((void)server.forecast(id), std::logic_error);
  Matrix bad(1, 1);
  EXPECT_THROW(server.ingest(id, bad, bad), ShapeError);
}

// ---- coalescing ------------------------------------------------------------

TEST(ServeCoalesce, SameVersionQueriesShareOneWindow) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 2000;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 1);
  server.ingest(id, values, mask);

  std::vector<std::future<Matrix>> futs;
  for (int k = 0; k < 5; ++k) futs.push_back(server.forecast_async(id));
  std::vector<Matrix> results;
  for (auto& f : futs) results.push_back(f.get());
  for (std::size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[k], results[0]);
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 5u);
  EXPECT_EQ(st.responses, 5u);
  EXPECT_EQ(st.engine_calls, 1u);
  EXPECT_EQ(st.batched_windows, 1u);  // five requests, ONE window
  EXPECT_EQ(st.coalesced_requests, 4u);
}

TEST(ServeCoalesce, IngestSplitsCoalescingGenerations) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 2000;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [v0, m0] = reading_at(s, 1);
  server.ingest(id, v0, m0);
  auto f1 = server.forecast_async(id);
  auto f2 = server.forecast_async(id);
  auto [v1, m1] = reading_at(s, 2);
  server.ingest(id, v1, m1);  // bumps the version: no coalescing across it
  auto f3 = server.forecast_async(id);
  const Matrix r1 = f1.get();
  const Matrix r2 = f2.get();
  const Matrix r3 = f3.get();
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r3, r1);  // saw one more reading
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.coalesced_requests, 1u);
  EXPECT_EQ(st.batched_windows, 2u);
}

// ---- snapshot swap under load ----------------------------------------------

TEST(ServeSnapshot, PublishValidatesDimensions) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ForecastServer server(engine, *s.normalizer, serve::ServeConfig{});
  core::RihgcnConfig mc;
  mc.lookback = 4;
  mc.horizon = 5;  // horizon mismatch
  mc.gcn_dim = 4;
  mc.lstm_dim = 4;
  mc.cheb_order = 2;
  core::RihgcnModel other(*s.graphs, s.ds.num_nodes(), s.ds.num_features(),
                          mc);
  EXPECT_THROW(
      (void)server.publish(std::make_shared<core::InferenceEngine>(other)),
      std::invalid_argument);
  EXPECT_THROW((void)server.publish(nullptr), std::invalid_argument);
  EXPECT_EQ(server.stats().snapshot_swaps, 0u);
}

// The acceptance-criteria test, run under TSan by tools/run_tsan.sh: client
// threads hammer forecasts while a "retrain" thread keeps publishing
// perturbed engines. Every request must be answered (zero dropped) with
// finite values (zero non-finite), and at least one response must reflect
// post-swap weights.
TEST(ServeSnapshot, SwapUnderLoad) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 100;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 4);
  server.ingest(id, values, mask);
  const Matrix baseline = server.forecast(id);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 40;
  constexpr std::size_t kSwaps = 6;
  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> non_finite{0};
  std::atomic<std::size_t> changed{0};

  std::thread retrainer([&] {
    for (std::size_t r = 0; r < kSwaps; ++r) {
      for (ad::Parameter* p : s.model->parameters()) {
        Matrix& v = p->value();
        for (std::size_t i = 0; i < v.size(); ++i) {
          v.data()[i] += 0.01 * static_cast<double>(r + 1);
        }
      }
      EXPECT_TRUE(
          server.publish(std::make_shared<core::InferenceEngine>(*s.model)));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const Matrix got = server.forecast(id);
        ++answered;
        if (got.has_non_finite()) ++non_finite;
        if (got != baseline) ++changed;
      }
    });
  }
  for (auto& t : clients) t.join();
  retrainer.join();
  // Fence: publish() posts its swap to the loop, so one more round-trip
  // through the (FIFO) loop queue guarantees every swap has been applied
  // before the counters below are read.
  (void)server.forecast(id);

  EXPECT_EQ(answered.load(), kClients * kPerClient);  // zero dropped
  EXPECT_EQ(non_finite.load(), 0u);
  EXPECT_GT(changed.load(), 0u);  // retrained weights actually served
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.snapshot_swaps, kSwaps);
  EXPECT_EQ(st.responses, kClients * kPerClient + 2);
  // Coalescing + batching under concurrency: strictly fewer engine calls
  // than requests.
  EXPECT_LT(st.engine_calls, st.requests);
}

// ---- graceful shutdown -----------------------------------------------------

// Regression: pre-§15 the destructor abandoned queued requests, so .get()
// threw a bare std::future_error{broken_promise}. Now every request queued
// at drain time resolves to a value (final flush) and everything arriving
// after resolves to ServeError{SHUTTING_DOWN} — a .get() always reports a
// meaningful, typed outcome.
TEST(ServeShutdown, QueuedRequestsResolveOnDestruction) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  std::vector<std::future<Matrix>> futs;
  {
    serve::ServeConfig cfg;
    cfg.max_batch = 8;
    cfg.max_delay_us = 60'000'000;  // only drain's final flush can serve these
    serve::ForecastServer server(engine, *s.normalizer, cfg);
    const std::size_t id = server.add_stream();
    auto [values, mask] = reading_at(s, 0);
    server.ingest(id, values, mask);
    futs.push_back(server.forecast_async(id));
    futs.push_back(server.forecast_async(id));
  }  // destructor == drain()
  for (auto& f : futs) {
    EXPECT_FALSE(f.get().has_non_finite());  // served, not abandoned
  }
}

TEST(ServeShutdown, RequestsAfterDrainGetTypedShutdownError) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ForecastServer server(engine, *s.normalizer, serve::ServeConfig{});
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  server.drain();
  EXPECT_TRUE(server.draining());
  auto fut = server.forecast_async(id);
  try {
    (void)fut.get();
    FAIL() << "expected ServeError{SHUTTING_DOWN}";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::ServeStatus::kShuttingDown);
    EXPECT_NE(std::string(e.what()).find("SHUTTING_DOWN"), std::string::npos);
  }
  EXPECT_THROW(server.ingest(id, values, mask), serve::ServeError);
  EXPECT_THROW((void)server.add_stream(), serve::ServeError);
  EXPECT_EQ(server.stats().aborted_requests, 1u);
  server.drain();  // idempotent
}

// Racy shutdown storm (TSan-covered): clients fire requests while another
// thread drains. Every future must resolve to a finite value or a
// ServeError — a std::future_error anywhere fails the test.
TEST(ServeShutdown, RacyDrainNeverBreaksPromises) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_us = 100;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 50;
  std::atomic<std::size_t> values_seen{0};
  std::atomic<std::size_t> typed_errors{0};
  std::atomic<std::size_t> broken{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        try {
          const Matrix got = server.forecast_async(id).get();
          EXPECT_FALSE(got.has_non_finite());
          ++values_seen;
        } catch (const serve::ServeError&) {
          ++typed_errors;
        } catch (const std::future_error&) {
          ++broken;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.drain();  // races the clients above
  for (auto& t : clients) t.join();
  EXPECT_EQ(broken.load(), 0u);
  EXPECT_EQ(values_seen.load() + typed_errors.load(), kClients * kPerClient);
}

TEST(ServeShutdown, NoReadingsFailsEagerlyWithoutQueueing) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 60'000'000;  // a queued request would hang the test
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto fut = server.forecast_async(id);
  // Resolved on the calling thread, before any loop round-trip: the request
  // never occupied a queue slot.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW((void)fut.get(), std::logic_error);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.shed_requests, 0u);
}

// ---- bounded admission -----------------------------------------------------

/// Fixture helper: a server whose admission queue can actually fill up —
/// flush thresholds parked far away, `max_queue` distinct streams.
struct OverloadRig {
  ServeFixture s;
  std::unique_ptr<serve::ForecastServer> server;
  std::vector<std::size_t> ids;
};

OverloadRig make_overload_rig(serve::ShedPolicy policy, std::size_t max_queue,
                              std::size_t num_streams) {
  OverloadRig r;
  r.s = make_fixture();
  core::InferenceEngine::Options opts;
  opts.max_batch = 16;
  auto engine = std::make_shared<core::InferenceEngine>(*r.s.model, opts);
  serve::ServeConfig cfg;
  cfg.max_batch = 16;                // never flush on size during the test
  cfg.max_delay_us = 60'000'000;     // nor on the timer
  cfg.max_queue = max_queue;
  cfg.shed_policy = policy;
  r.server = std::make_unique<serve::ForecastServer>(engine, *r.s.normalizer,
                                                     cfg);
  for (std::size_t k = 0; k < num_streams; ++k) {
    r.ids.push_back(r.server->add_stream(k));
    auto [values, mask] = reading_at(r.s, 2 * k);
    r.server->ingest(r.ids[k], values, mask);
  }
  return r;
}

TEST(ServeOverload, RejectNewFailsRequestsBeyondMaxQueue) {
  OverloadRig r = make_overload_rig(serve::ShedPolicy::kRejectNew,
                                    /*max_queue=*/4, /*num_streams=*/6);
  std::vector<std::future<Matrix>> futs;
  for (std::size_t id : r.ids) futs.push_back(r.server->forecast_async(id));
  // Requests 4 and 5 needed a new window slot in a full queue: OVERLOADED.
  for (std::size_t k = 4; k < 6; ++k) {
    try {
      (void)futs[k].get();
      FAIL() << "request " << k << " should have been rejected";
    } catch (const serve::ServeError& e) {
      EXPECT_EQ(e.status(), serve::ServeStatus::kOverloaded);
    }
  }
  // Coalescing attaches never count against max_queue.
  auto coalesced = r.server->forecast_async(r.ids[0]);
  r.server->drain();  // final flush serves the 4 admitted windows
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_FALSE(futs[k].get().has_non_finite());
  }
  EXPECT_FALSE(coalesced.get().has_non_finite());
  const serve::ServerStats st = r.server->stats();
  EXPECT_EQ(st.shed_requests, 2u);
  EXPECT_EQ(st.coalesced_requests, 1u);
  EXPECT_EQ(st.responses, 5u);
}

TEST(ServeOverload, ShedOldestEvictsTheFrontOfTheQueue) {
  OverloadRig r = make_overload_rig(serve::ShedPolicy::kShedOldest,
                                    /*max_queue=*/4, /*num_streams=*/6);
  std::vector<std::future<Matrix>> futs;
  for (std::size_t id : r.ids) futs.push_back(r.server->forecast_async(id));
  // Streams 0 and 1 were at the front when 4 and 5 arrived: they pay.
  for (std::size_t k = 0; k < 2; ++k) {
    try {
      (void)futs[k].get();
      FAIL() << "oldest request " << k << " should have been shed";
    } catch (const serve::ServeError& e) {
      EXPECT_EQ(e.status(), serve::ServeStatus::kOverloaded);
    }
  }
  r.server->drain();
  for (std::size_t k = 2; k < 6; ++k) {
    EXPECT_FALSE(futs[k].get().has_non_finite());
  }
  EXPECT_EQ(r.server->stats().shed_requests, 2u);
}

// The §15 acceptance storm, run under TSan by tools/run_tsan.sh: 4 client
// threads hammer a deliberately slow, fault-injecting engine behind a tiny
// queue with tight deadlines. Every request must resolve to a typed outcome
// (value / OVERLOADED / DEADLINE_EXCEEDED — never a broken promise or a
// hang), values must be finite even when the engine throws or emits NaN,
// and once the faults stop the server must recover to genuine engine
// serving.
TEST(ServeOverload, OverloadStormShedsFailsFastAndRecovers) {
  ServeFixture s = make_fixture();
  core::InferenceEngine::Options opts;
  opts.max_batch = 2;
  serve::FaultyEngine::FaultConfig faults;
  faults.latency_us = 1500;  // ~2x over capacity at the client rates below
  faults.throw_rate = 0.10;
  faults.nan_rate = 0.10;
  faults.seed = 0xdecafULL;
  auto engine =
      std::make_shared<serve::FaultyEngine>(*s.model, opts, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_us = 200;
  // max_queue below max_batch: only the delay timer flushes, so concurrent
  // distinct-stream arrivals genuinely contend for the one queue slot.
  cfg.max_queue = 1;
  cfg.default_deadline_us = 4'000;
  cfg.breaker_threshold = 3;
  cfg.breaker_cooldown_us = 2'000;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 40;
  std::vector<std::size_t> ids;
  for (std::size_t c = 0; c < kClients; ++c) {
    ids.push_back(server.add_stream(c));
    auto [values, mask] = reading_at(s, 3 * c);
    server.ingest(ids[c], values, mask);
  }
  std::atomic<std::size_t> values_seen{0};
  std::atomic<std::size_t> shed{0};
  std::atomic<std::size_t> expired{0};
  std::atomic<std::size_t> other_errors{0};
  std::atomic<std::size_t> non_finite{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        try {
          // Every 4th request carries a deadline tighter than one engine
          // call — under sustained load some of these MUST expire.
          const std::optional<std::uint64_t> deadline =
              (q % 4 == 3) ? std::optional<std::uint64_t>(300) : std::nullopt;
          const Matrix got = server.forecast_async(ids[c], deadline).get();
          if (got.has_non_finite()) ++non_finite;
          ++values_seen;
        } catch (const serve::ServeError& e) {
          if (e.status() == serve::ServeStatus::kOverloaded) {
            ++shed;
          } else if (e.status() == serve::ServeStatus::kDeadlineExceeded) {
            ++expired;
          } else {
            ++other_errors;
          }
        }
        if (q % 8 == 7) {  // fresh ingests keep the windows splitting
          auto [values, mask] = reading_at(s, (q + 5 * c) % 40);
          try {
            server.ingest(ids[c], values, mask);
          } catch (const serve::ServeError&) {
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  // Zero hangs is implicit (the joins returned); every request resolved.
  EXPECT_EQ(values_seen.load() + shed.load() + expired.load() +
                other_errors.load(),
            kClients * kPerClient);
  EXPECT_EQ(non_finite.load(), 0u);
  EXPECT_EQ(other_errors.load(), 0u);
  const serve::ServerStats mid = server.stats();
  EXPECT_EQ(mid.shed_requests, shed.load());
  EXPECT_EQ(mid.deadline_expired, expired.load());
  EXPECT_GT(mid.shed_requests + mid.deadline_expired, 0u);  // storm really bit
  // Recovery: with the injected faults a matter of rate, keep asking until
  // one response is served by the engine itself (fallback counter flat).
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    const std::size_t fallback_before = server.stats().fallback_responses;
    try {
      const Matrix got = server.forecast_async(ids[0], /*deadline_us=*/0).get();
      EXPECT_FALSE(got.has_non_finite());
      recovered = server.stats().fallback_responses == fallback_before;
    } catch (const serve::ServeError&) {
    }
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(recovered);
}

// ---- deadlines -------------------------------------------------------------

TEST(ServeDeadline, ExpiresInQueueWithTypedError) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 60'000'000;  // the flush timer never saves it
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  auto fut = server.forecast_async(id, /*deadline_us=*/500);
  try {
    (void)fut.get();
    FAIL() << "expected DEADLINE_EXCEEDED";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::ServeStatus::kDeadlineExceeded);
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.deadline_expired, 1u);
  EXPECT_EQ(st.engine_calls, 0u);  // never consumed a batch slot
}

TEST(ServeDeadline, ConfigDefaultAppliesAndExplicitZeroDisables) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 20'000;        // flush well after the default deadline
  cfg.default_deadline_us = 1'000;  // inherited by plain forecast_async
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  auto inherited = server.forecast_async(id);
  EXPECT_THROW((void)inherited.get(), serve::ServeError);
  // Explicit 0 opts this request out of the default: the (slow) flush timer
  // serves it.
  auto unbounded = server.forecast_async(id, /*deadline_us=*/0);
  EXPECT_FALSE(unbounded.get().has_non_finite());
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.deadline_expired, 1u);
  EXPECT_EQ(st.responses, 1u);
}

// ---- circuit breaker + fallback --------------------------------------------

TEST(ServeBreaker, OpensServesFallbackAndClosesViaProbe) {
  ServeFixture s = make_fixture();
  serve::FaultyEngine::FaultConfig faults;  // forced faults only
  auto engine = std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_us = 200'000;  // long enough to observe OPEN behavior
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  const Matrix baseline = server.forecast(id);  // engine success → last_good
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kClosed);

  engine->force_throw_next(2);
  const Matrix fb1 = server.forecast(id);
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kClosed);  // 1 of 2
  const Matrix fb2 = server.forecast(id);
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kOpen);
  EXPECT_EQ(fb1, baseline);  // degraded path = last good forecast
  EXPECT_EQ(fb2, baseline);

  // While OPEN, requests are answered from fallback WITHOUT touching the
  // engine.
  const std::size_t calls_before = engine->calls();
  const Matrix fb3 = server.forecast(id);
  EXPECT_EQ(fb3, baseline);
  EXPECT_EQ(engine->calls(), calls_before);

  std::this_thread::sleep_for(std::chrono::microseconds(
      cfg.breaker_cooldown_us + 50'000));
  const Matrix probe = server.forecast(id);  // half-open probe, succeeds
  EXPECT_EQ(probe, baseline);                // same window, same engine
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kClosed);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.engine_failures, 2u);
  EXPECT_EQ(st.breaker_opens, 1u);
  EXPECT_EQ(st.breaker_probes, 1u);
  EXPECT_EQ(st.breaker_closes, 1u);
  EXPECT_EQ(st.fallback_responses, 3u);
  EXPECT_EQ(st.responses, 5u);  // every request answered with a value
}

TEST(ServeBreaker, NanOutputScrubsToMeanThenPrefersLastGood) {
  ServeFixture s = make_fixture();
  serve::FaultyEngine::FaultConfig faults;
  auto engine = std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);

  // First forecast EVER is poisoned: no last-good yet, so the engine output
  // is scrubbed entry-wise — the one NaN becomes the historical mean, the
  // rest of the matrix is the engine's own (finite) prediction.
  engine->force_nan_next(1);
  const Matrix scrubbed = server.forecast(id);
  EXPECT_FALSE(scrubbed.has_non_finite());
  EXPECT_DOUBLE_EQ(scrubbed(0, 0), s.normalizer->denormalize(0.0, 0));
  serve::ServerStats st = server.stats();
  EXPECT_EQ(st.scrubbed_entries, 1u);
  EXPECT_EQ(st.fallback_responses, 1u);

  const Matrix good = server.forecast(id);  // clean call → last_good
  EXPECT_FALSE(good.has_non_finite());
  engine->force_nan_next(1);
  const Matrix fb = server.forecast(id);
  EXPECT_EQ(fb, good);  // last-good now outranks the scrub path
  st = server.stats();
  EXPECT_EQ(st.scrubbed_entries, 1u);  // unchanged — no scrub this time
  EXPECT_EQ(st.fallback_responses, 2u);
  EXPECT_EQ(st.engine_failures, 2u);
}

TEST(ServeBreaker, DisabledDegradedServingSurfacesEngineFailure) {
  ServeFixture s = make_fixture();
  serve::FaultyEngine::FaultConfig faults;
  auto engine = std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.degraded_serving = false;  // typed error beats a stale number
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  engine->force_throw_next(1);
  auto fut = server.forecast_async(id);
  try {
    (void)fut.get();
    FAIL() << "expected ENGINE_FAILURE";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::ServeStatus::kEngineFailure);
  }
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.engine_failures, 1u);
  EXPECT_EQ(st.fallback_responses, 0u);
  EXPECT_EQ(st.responses, 0u);
}

// ---- canary-gated publish --------------------------------------------------

TEST(ServePublish, CanaryQuarantinesPoisonedCandidate) {
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  const Matrix before = server.forecast(id);

  // Candidate 1: poisons every output — the canary must catch it.
  serve::FaultyEngine::FaultConfig nan_always;
  nan_always.nan_rate = 1.0;
  EXPECT_FALSE(server.publish(std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, nan_always)));
  // Candidate 2: throws on every call.
  serve::FaultyEngine::FaultConfig throw_always;
  throw_always.throw_rate = 1.0;
  EXPECT_FALSE(server.publish(std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, throw_always)));

  // Serving is bitwise unaffected: same snapshot, same window, same answer.
  const Matrix after = server.forecast(id);
  EXPECT_EQ(after, before);
  serve::ServerStats st = server.stats();
  EXPECT_EQ(st.quarantined_publishes, 2u);
  EXPECT_EQ(st.snapshot_swaps, 0u);

  // A healthy candidate still goes through.
  EXPECT_TRUE(server.publish(std::make_shared<core::InferenceEngine>(*s.model)));
  (void)server.forecast(id);  // loop round-trip fences the posted swap
  st = server.stats();
  EXPECT_EQ(st.snapshot_swaps, 1u);
  EXPECT_EQ(st.quarantined_publishes, 2u);
}

// ---- ExecPool (DESIGN.md §16) ----------------------------------------------

TEST(ExecPool, RejectsZeroWorkers) {
  EXPECT_THROW(serve::ExecPool pool(0), std::invalid_argument);
}

TEST(ExecPool, PerWorkerFifoOrder) {
  serve::ExecPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::vector<int> order;  // written only by worker 0, read after the fence
  std::promise<void> done;
  for (int i = 0; i < 16; ++i) {
    pool.submit(0, [&order, i] { order.push_back(i); });
  }
  pool.submit(0, [&done] { done.set_value(); });  // FIFO fence
  done.get_future().wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecPool, DrainsSubmittedTasksOnDestruction) {
  std::atomic<int> ran{0};
  {
    serve::ExecPool pool(3);
    for (int i = 0; i < 60; ++i) {
      pool.submit(static_cast<std::size_t>(i), [&ran] { ++ran; });
    }
    // Destructor: a submitted task is a promise of execution.
  }
  EXPECT_EQ(ran.load(), 60);
}

/// Saves and restores RIHGCN_SERVE_WORKERS around env-parsing tests.
class WorkersEnvGuard {
 public:
  WorkersEnvGuard() {
    const char* v = std::getenv("RIHGCN_SERVE_WORKERS");
    if (v != nullptr) saved_ = v;
  }
  ~WorkersEnvGuard() {
    if (saved_.has_value()) {
      setenv("RIHGCN_SERVE_WORKERS", saved_->c_str(), 1);
    } else {
      unsetenv("RIHGCN_SERVE_WORKERS");
    }
  }
  WorkersEnvGuard(const WorkersEnvGuard&) = delete;
  WorkersEnvGuard& operator=(const WorkersEnvGuard&) = delete;

 private:
  std::optional<std::string> saved_;
};

TEST(ExecPool, EnvOverrideParsesStrictly) {
  WorkersEnvGuard guard;
  unsetenv("RIHGCN_SERVE_WORKERS");
  EXPECT_EQ(serve::serve_workers_from_env(5), 5u);  // unset → fallback
  setenv("RIHGCN_SERVE_WORKERS", "", 1);
  EXPECT_EQ(serve::serve_workers_from_env(5), 5u);  // empty → fallback
  setenv("RIHGCN_SERVE_WORKERS", "3", 1);
  EXPECT_EQ(serve::serve_workers_from_env(5), 3u);
  setenv("RIHGCN_SERVE_WORKERS", "0", 1);
  EXPECT_EQ(serve::serve_workers_from_env(5), 0u);  // 0 is VALID: inline
  // Set-but-invalid throws — the RIHGCN_THREADS contract: a typo'd worker
  // count must fail loudly, never silently serve single-threaded.
  for (const char* bad : {"abc", "4x", "-1", " 2", "1e3", "99999"}) {
    setenv("RIHGCN_SERVE_WORKERS", bad, 1);
    EXPECT_THROW((void)serve::serve_workers_from_env(5), std::runtime_error)
        << "value '" << bad << "'";
  }
}

TEST(ExecPool, InvalidEnvFailsServerConstruction) {
  WorkersEnvGuard guard;
  ServeFixture s = make_fixture();
  auto engine = std::make_shared<core::InferenceEngine>(*s.model);
  setenv("RIHGCN_SERVE_WORKERS", "not-a-number", 1);
  EXPECT_THROW(
      serve::ForecastServer(engine, *s.normalizer, serve::ServeConfig{}),
      std::runtime_error);
  // And a valid override wins over the config value.
  setenv("RIHGCN_SERVE_WORKERS", "2", 1);
  serve::ForecastServer server(engine, *s.normalizer, serve::ServeConfig{});
  EXPECT_EQ(server.num_workers(), 2u);
}

// ---- pooled flush execution (DESIGN.md §16) --------------------------------

/// Ingests 4 streams, then runs 3 query rounds — each round issues a
/// coalescing pair per stream, round 2 publishes an identically-compiled
/// engine MID-FLIGHT (between issuing and settling) — and returns every
/// response in issue order. Pure function of the fixture: any two servers
/// over engines compiled from the same model must return identical bits.
std::vector<Matrix> run_parity_scenario(serve::ForecastServer& server,
                                        const ServeFixture& s) {
  constexpr std::size_t kStreams = 4;
  std::vector<std::size_t> ids;
  for (std::size_t k = 0; k < kStreams; ++k) {
    ids.push_back(server.add_stream(3 * k));
    for (std::size_t t = 0; t < 4; ++t) {
      auto [values, mask] = reading_at(s, 7 * k + t);
      server.ingest(ids[k], values, mask);
    }
  }
  std::vector<Matrix> outs;
  for (std::size_t round = 0; round < 3; ++round) {
    std::vector<std::future<Matrix>> futs;
    for (std::size_t k = 0; k < kStreams; ++k) {
      futs.push_back(server.forecast_async(ids[k]));  // distinct window
      futs.push_back(server.forecast_async(ids[k]));  // coalesces onto it
    }
    if (round == 2) {
      // Snapshot swap racing the in-flight flush: the published engine is
      // compiled from the same weights, so whichever flush it lands before
      // produces the same bits.
      EXPECT_TRUE(server.publish(
          std::make_shared<core::InferenceEngine>(*s.model)));
    }
    for (auto& f : futs) outs.push_back(f.get());
    for (std::size_t k = 0; k < kStreams; ++k) {
      auto [values, mask] = reading_at(s, 11 + 2 * round + k);
      server.ingest(ids[k], values, mask);  // next round: fresh windows
    }
  }
  return outs;
}

TEST(ServePool, BitwiseMatchesInlineFlushAtFixedK) {
  ServeFixture s = make_fixture();
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 300;

  cfg.num_workers = 0;  // the §14/§15 inline reference
  serve::ForecastServer inline_server(
      std::make_shared<core::InferenceEngine>(*s.model), *s.normalizer, cfg);
  const std::vector<Matrix> want = run_parity_scenario(inline_server, s);
  EXPECT_EQ(inline_server.stats().pooled_flushes, 0u);

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    cfg.num_workers = workers;
    serve::ForecastServer pooled(
        std::make_shared<core::InferenceEngine>(*s.model), *s.normalizer,
        cfg);
    const std::vector<Matrix> got = run_parity_scenario(pooled, s);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "workers=" << workers << " response " << i;
      EXPECT_FALSE(got[i].has_non_finite());
    }
    const serve::ServerStats st = pooled.stats();
    EXPECT_GT(st.pooled_flushes, 0u) << "workers=" << workers;
    EXPECT_EQ(st.responses, got.size());
  }
}

TEST(ServePool, BreakerOpensServesFallbackAndProbesUnderPool) {
  // Sequential single-window flushes (max_batch = 1, blocking forecasts):
  // every dispatch is exactly one chunk, so the pooled breaker choreography
  // must match the inline ServeBreaker.* semantics step for step.
  ServeFixture s = make_fixture();
  serve::FaultyEngine::FaultConfig faults;  // forced faults only
  auto engine = std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 1;
  cfg.max_delay_us = 100;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_us = 200'000;
  cfg.num_workers = 2;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  const std::size_t id = server.add_stream();
  auto [values, mask] = reading_at(s, 0);
  server.ingest(id, values, mask);
  const Matrix baseline = server.forecast(id);
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kClosed);

  engine->force_throw_next(2);
  EXPECT_EQ(server.forecast(id), baseline);
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kClosed);  // 1 of 2
  EXPECT_EQ(server.forecast(id), baseline);
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kOpen);

  const std::size_t calls_before = engine->calls();
  EXPECT_EQ(server.forecast(id), baseline);  // OPEN: fallback, engine idle
  EXPECT_EQ(engine->calls(), calls_before);

  std::this_thread::sleep_for(
      std::chrono::microseconds(cfg.breaker_cooldown_us + 50'000));
  EXPECT_EQ(server.forecast(id), baseline);  // half-open probe succeeds
  EXPECT_EQ(server.breaker_state(), serve::BreakerState::kClosed);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.engine_failures, 2u);
  EXPECT_EQ(st.breaker_opens, 1u);
  EXPECT_EQ(st.breaker_probes, 1u);
  EXPECT_EQ(st.breaker_closes, 1u);
  EXPECT_GT(st.pooled_flushes, 0u);
}

TEST(ServePool, DrainSettlesInFlightPooledFlush) {
  // Requests dispatched to slow workers, then an immediate drain: the
  // quiesce rendezvous must wait for the in-flight completions, so every
  // future resolves to a value or a typed error — never a broken promise.
  ServeFixture s = make_fixture();
  serve::FaultyEngine::FaultConfig faults;
  faults.latency_us = 4000;
  auto engine = std::make_shared<serve::FaultyEngine>(
      *s.model, core::InferenceEngine::Options{}, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_us = 100;
  cfg.num_workers = 2;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  std::vector<std::size_t> ids;
  std::vector<std::future<Matrix>> futs;
  for (std::size_t k = 0; k < 4; ++k) {
    ids.push_back(server.add_stream(k));
    auto [values, mask] = reading_at(s, 2 * k);
    server.ingest(ids[k], values, mask);
    futs.push_back(server.forecast_async(ids[k]));
  }
  server.drain();
  std::size_t settled = 0;
  for (auto& f : futs) {
    try {
      EXPECT_FALSE(f.get().has_non_finite());
      ++settled;
    } catch (const serve::ServeError& e) {
      EXPECT_EQ(e.status(), serve::ServeStatus::kShuttingDown);
      ++settled;
    }
  }
  EXPECT_EQ(settled, futs.size());
}

TEST(ServePool, StormRacesWorkersBreakerPublishAndDrain) {
  // The §16 TSan storm: pooled workers execute a faulty, slow engine while
  // client threads race coalescing queries, a publisher floods canary-
  // rejected candidates, and the whole thing drains mid-traffic. Invariants:
  // every request resolves (zero broken promises), zero non-finite values
  // escape, and counter accounting is exact — the serving engine never
  // changes, so server-side engine_failures must equal the faults the
  // FaultyEngine actually injected into serving calls.
  ServeFixture s = make_fixture();
  core::InferenceEngine::Options opts;
  opts.max_batch = 4;
  serve::FaultyEngine::FaultConfig faults;
  faults.latency_us = 700;
  faults.throw_rate = 0.06;
  faults.nan_rate = 0.06;
  faults.seed = 0xfeedULL;
  auto engine =
      std::make_shared<serve::FaultyEngine>(*s.model, opts, faults);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 200;
  cfg.max_queue = 8;
  cfg.breaker_threshold = 3;
  cfg.breaker_cooldown_us = 1'500;
  cfg.num_workers = 3;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 25;
  std::vector<std::size_t> ids;
  for (std::size_t c = 0; c < kClients; ++c) {
    ids.push_back(server.add_stream(c));
    auto [values, mask] = reading_at(s, 3 * c);
    server.ingest(ids[c], values, mask);
  }
  std::atomic<std::size_t> values_seen{0};
  std::atomic<std::size_t> typed_errors{0};
  std::atomic<std::size_t> non_finite{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        try {
          const Matrix got = server.forecast_async(ids[c]).get();
          if (got.has_non_finite()) ++non_finite;
          ++values_seen;
        } catch (const serve::ServeError&) {
          ++typed_errors;
        }
        if (q % 6 == 5) {
          auto [values, mask] = reading_at(s, (q + 7 * c) % 40);
          try {
            server.ingest(ids[c], values, mask);
          } catch (const serve::ServeError&) {
          }
        }
      }
    });
  }
  // Publisher: every candidate is poisoned, so the canary rejects each one
  // and the serving snapshot — and with it the exact-counter identity
  // below — never changes.
  std::thread publisher([&] {
    serve::FaultyEngine::FaultConfig poison;
    poison.nan_rate = 1.0;
    for (int i = 0; i < 12; ++i) {
      try {
        EXPECT_FALSE(server.publish(std::make_shared<serve::FaultyEngine>(
            *s.model, core::InferenceEngine::Options{}, poison)));
      } catch (const std::exception&) {
        ADD_FAILURE() << "publish threw during the storm";
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : clients) t.join();
  publisher.join();
  server.drain();
  EXPECT_EQ(values_seen.load() + typed_errors.load(), kClients * kPerClient);
  EXPECT_EQ(non_finite.load(), 0u);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.responses, values_seen.load());
  EXPECT_EQ(st.engine_failures,
            engine->throws_injected() + engine->nans_injected());
  EXPECT_EQ(st.quarantined_publishes, 12u);
  EXPECT_EQ(st.snapshot_swaps, 0u);
  EXPECT_GT(st.pooled_flushes, 0u);
}

}  // namespace
}  // namespace rihgcn
