// Tier-2 timed serve-scaling regression (DESIGN.md §16).
//
// The §16 worker pool exists so serving throughput scales with cores instead
// of being hard-ceilinged at the one event-loop thread. This locks that in
// with a wall-clock assertion: closed-loop QPS at 4 ExecPool workers must
// beat 1 worker by RIHGCN_MIN_SCALING (default 1.8, the same contract as the
// ThreadScaling.* kernel tests) — a future change that quietly serializes
// flush execution fails a test instead of a production deployment.
//
// Timed and noisy, so: tier-2 (not the always-on gate), skips on hosts with
// < 4 cores, distinct streams per client (no coalescing masking the engine
// work), and a measurement window long enough to amortize flush timers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "serve/server.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

double min_scaling_factor() {
  const char* env = std::getenv("RIHGCN_MIN_SCALING");
  if (env == nullptr || *env == '\0') return 1.8;
  return std::strtod(env, nullptr);
}

bool enough_cores() { return std::thread::hardware_concurrency() >= 4; }

struct ScalingFixture {
  data::TrafficDataset ds;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
};

ScalingFixture make_fixture() {
  ScalingFixture s;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 256;  // big enough that predict_batch dominates the loop
  cfg.num_corridors = 25;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = 17;
  s.ds = data::generate_pems_like(cfg);
  Rng rng(5);
  data::inject_mcar(s.ds, 0.4, rng);
  const std::size_t train_end = s.ds.num_timesteps() * 7 / 10;
  s.normalizer = std::make_unique<data::ZScoreNormalizer>(s.ds, train_end);
  s.normalizer->normalize(s.ds);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 24;
  s.graphs = std::make_unique<core::HeterogeneousGraphs>(s.ds, train_end,
                                                         gcfg, rng);
  core::RihgcnConfig mc;
  mc.lookback = 6;
  mc.horizon = 3;
  mc.gcn_dim = 8;
  mc.lstm_dim = 8;
  s.model = std::make_unique<core::RihgcnModel>(*s.graphs, s.ds.num_nodes(),
                                                s.ds.num_features(), mc);
  return s;
}

/// Closed-loop QPS: 8 client threads on 8 DISTINCT streams (no coalescing),
/// each re-issuing as soon as its previous forecast lands.
double measure_qps(const ScalingFixture& s, std::size_t workers) {
  core::InferenceEngine::Options eopts;
  eopts.max_batch = 8;
  auto engine = std::make_shared<core::InferenceEngine>(*s.model, eopts);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 200;
  cfg.max_queue = 64;
  cfg.num_workers = workers;
  serve::ForecastServer server(engine, *s.normalizer, cfg);
  constexpr std::size_t kClients = 8;
  std::vector<std::size_t> ids;
  for (std::size_t c = 0; c < kClients; ++c) {
    ids.push_back(server.add_stream(c));
    Matrix values(s.ds.num_nodes(), s.ds.num_features());
    Matrix mask(s.ds.num_nodes(), s.ds.num_features());
    for (std::size_t i = 0; i < values.rows(); ++i) {
      for (std::size_t f = 0; f < values.cols(); ++f) {
        mask(i, f) = s.ds.mask[3 * c](i, f);
        values(i, f) =
            s.normalizer->denormalize(s.ds.truth[3 * c](i, f), f) * mask(i, f);
      }
    }
    server.ingest(ids[c], values, mask);
    (void)server.forecast(ids[c]);  // warmup: page-in, plan caches
  }
  constexpr auto kWindow = std::chrono::milliseconds(800);
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)server.forecast_async(ids[c]).get();
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(kWindow);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(completed.load()) / elapsed.count();
}

TEST(ServeScaling, PooledQpsScalesAcrossWorkers) {
  if (!enough_cores()) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  const ScalingFixture s = make_fixture();
  const double qps1 = measure_qps(s, 1);
  const double qps4 = measure_qps(s, 4);
  const double speedup = qps4 / qps1;
  RecordProperty("qps_workers1", static_cast<int>(qps1));
  RecordProperty("qps_workers4", static_cast<int>(qps4));
  EXPECT_GE(speedup, min_scaling_factor())
      << "closed-loop QPS: " << qps1 << " @1 worker vs " << qps4
      << " @4 workers";
}

}  // namespace
}  // namespace rihgcn
