// Stress and cross-validation tests:
//  * fuzzed autodiff DAGs checked against numerical differentiation,
//  * DTW dynamic program cross-checked against the exponential recursive
//    definition on tiny series,
//  * the air-quality generator (the conclusion's generalization claim),
//  * end-to-end determinism of the full training pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "baselines/neural.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "graph/graph.hpp"
#include "tensor/rng.hpp"
#include "timeseries/distance.hpp"

namespace rihgcn {
namespace {

// ---- Autodiff fuzzing -------------------------------------------------------

/// Build a random DAG of tape ops over two parameters and return the scalar
/// loss. The op sequence is driven by `rng`, so each seed is a distinct
/// program; re-running with the same seed rebuilds the identical graph.
ad::Var random_graph(ad::Tape& tape, std::vector<ad::Var> pool, Rng rng,
                     std::size_t depth) {
  for (std::size_t step = 0; step < depth; ++step) {
    const std::size_t a = rng.uniform_index(pool.size());
    const std::size_t b = rng.uniform_index(pool.size());
    ad::Var va = pool[a];
    ad::Var vb = pool[b];
    switch (rng.uniform_index(7)) {
      case 0:
        pool.push_back(tape.add(va, vb));
        break;
      case 1:
        pool.push_back(tape.sub(va, vb));
        break;
      case 2:
        pool.push_back(tape.mul(va, vb));
        break;
      case 3:
        pool.push_back(tape.tanh(va));
        break;
      case 4:
        pool.push_back(tape.sigmoid(va));
        break;
      case 5:
        pool.push_back(tape.scale(va, rng.uniform(-2.0, 2.0)));
        break;
      default:
        pool.push_back(tape.add_scalar(va, rng.uniform(-1.0, 1.0)));
        break;
    }
  }
  ad::Var acc = pool.front();
  for (std::size_t i = 1; i < pool.size(); ++i) acc = tape.add(acc, pool[i]);
  return tape.mean_all(acc);
}

class AutodiffFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutodiffFuzzTest, RandomGraphGradientsMatchNumeric) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng init(seed);
  std::vector<ad::Parameter> params;
  params.emplace_back(init.normal_matrix(2, 3, 0.5), "a");
  params.emplace_back(init.normal_matrix(2, 3, 0.5), "b");
  auto build = [&](ad::Tape& tape) {
    std::vector<ad::Var> pool{tape.leaf(params[0]), tape.leaf(params[1])};
    return random_graph(tape, std::move(pool), Rng(seed * 31 + 1), 12);
  };
  for (auto& p : params) p.zero_grad();
  {
    ad::Tape tape;
    tape.backward(build(tape));
  }
  auto loss_value = [&] {
    ad::Tape tape;
    return tape.value(build(tape))(0, 0);
  };
  for (auto& p : params) {
    EXPECT_LT(ad::gradient_check(p, loss_value, p.grad(), 1e-6), 1e-4)
        << "fuzz seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutodiffFuzzTest,
                         ::testing::Range(1, 13));  // 12 random programs

TEST(AutodiffStress, VeryDeepChainStaysStable) {
  ad::Parameter w(Matrix{{0.9}}, "w");
  ad::Tape tape;
  ad::Var x = tape.leaf(w);
  for (int i = 0; i < 500; ++i) x = tape.tanh(x);
  ad::Var loss = tape.mean_all(x);
  tape.backward(loss);
  EXPECT_TRUE(std::isfinite(w.grad()(0, 0)));
  EXPECT_GE(tape.num_nodes(), 500u);
}

// ---- DTW brute-force cross-check --------------------------------------------

/// Exponential-time recursive DTW straight from the definition.
double dtw_brute(std::span<const double> a, std::span<const double> b,
                 std::size_t i, std::size_t j) {
  const double cost = std::abs(a[i] - b[j]);
  if (i == 0 && j == 0) return cost;
  double best = 1e300;
  if (i > 0) best = std::min(best, dtw_brute(a, b, i - 1, j));
  if (j > 0) best = std::min(best, dtw_brute(a, b, i, j - 1));
  if (i > 0 && j > 0) best = std::min(best, dtw_brute(a, b, i - 1, j - 1));
  return cost + best;
}

TEST(DtwCrossCheck, MatchesRecursiveDefinitionOnTinySeries) {
  Rng rng(2);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(6);
    const std::size_t m = 1 + rng.uniform_index(6);
    std::vector<double> a(n), b(m);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    EXPECT_NEAR(ts::dtw(a, b), dtw_brute(a, b, n - 1, m - 1), 1e-12);
  }
}

// ---- Air-quality generator --------------------------------------------------

data::AirQualityConfig small_aq() {
  data::AirQualityConfig cfg;
  cfg.num_stations = 12;
  cfg.num_days = 14;
  cfg.seed = 3;
  return cfg;
}

TEST(AirQuality, ShapesAndRanges) {
  const data::TrafficDataset ds = data::generate_air_quality_like(small_aq());
  EXPECT_EQ(ds.num_nodes(), 12u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.num_timesteps(), 14u * 24u);
  for (const Matrix& x : ds.truth) {
    EXPECT_GE(x.min(), 2.0);
    EXPECT_LT(x.max(), 500.0);
  }
  EXPECT_DOUBLE_EQ(ds.missing_rate(), 0.0);
}

TEST(AirQuality, Pm10TracksPm25) {
  const data::TrafficDataset ds = data::generate_air_quality_like(small_aq());
  double corr = 0.0, v1 = 0.0, v2 = 0.0, m1 = 0.0, m2 = 0.0;
  const std::size_t samples = ds.num_timesteps();
  for (std::size_t t = 0; t < samples; ++t) {
    m1 += ds.truth[t](0, 0);
    m2 += ds.truth[t](0, 1);
  }
  m1 /= static_cast<double>(samples);
  m2 /= static_cast<double>(samples);
  for (std::size_t t = 0; t < samples; ++t) {
    const double a = ds.truth[t](0, 0) - m1;
    const double b = ds.truth[t](0, 1) - m2;
    corr += a * b;
    v1 += a * a;
    v2 += b * b;
  }
  EXPECT_GT(corr / std::sqrt(v1 * v2), 0.85);
}

TEST(AirQuality, MorningPeakExists) {
  const data::TrafficDataset ds = data::generate_air_quality_like(small_aq());
  double peak = 0.0, pre_dawn = 0.0;
  for (std::size_t day = 0; day < 5; ++day) {  // weekdays
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      peak += ds.truth[day * 24 + 8](i, 0);
      pre_dawn += ds.truth[day * 24 + 4](i, 0);
    }
  }
  EXPECT_GT(peak, pre_dawn);
}

TEST(AirQuality, EpisodesRaiseMultiDayAverages) {
  // With vs without episodes: long-window maxima must differ notably.
  data::AirQualityConfig with = small_aq();
  data::AirQualityConfig without = small_aq();
  without.episodes = 0.0;
  const auto ds_with = data::generate_air_quality_like(with);
  const auto ds_without = data::generate_air_quality_like(without);
  double max_with = 0.0, max_without = 0.0;
  for (std::size_t t = 0; t < ds_with.num_timesteps(); ++t) {
    max_with = std::max(max_with, ds_with.truth[t].col_mean()(0, 0));
    max_without = std::max(max_without, ds_without.truth[t].col_mean()(0, 0));
  }
  EXPECT_GT(max_with, max_without + 5.0);
}

TEST(AirQuality, TrainableEndToEnd) {
  // The conclusion's generalization claim: the same pipeline handles AQ
  // data with missing values.
  data::TrafficDataset ds = data::generate_air_quality_like(small_aq());
  Rng rng(4);
  data::inject_mcar_readings(ds, 0.4, rng);
  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);
  nz.normalize(ds);
  const data::WindowSampler sampler(ds, 8, 4);
  const data::SplitIndices split = sampler.split();
  const Matrix lap = graph::scaled_laplacian_from_distances(ds.geo_distances);
  baselines::NeuralBaselineConfig cfg;
  cfg.lookback = 8;
  cfg.horizon = 4;
  cfg.hidden = 8;
  baselines::FcGcnIModel model(lap, ds.num_features(), cfg);
  core::TrainConfig tc;
  tc.max_epochs = 4;
  tc.max_train_windows = 60;
  tc.max_val_windows = 24;
  const core::EvalResult before =
      core::evaluate_prediction(model, sampler, split.test, nullptr, 0, 30);
  core::train_model(model, sampler, split, tc);
  const core::EvalResult after =
      core::evaluate_prediction(model, sampler, split.test, nullptr, 0, 30);
  EXPECT_LT(after.mae, before.mae);
}

// ---- Determinism ------------------------------------------------------------

TEST(Determinism, FullPipelineReproducesExactly) {
  auto run = [] {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 5;
    cfg.num_days = 3;
    cfg.steps_per_day = 48;
    cfg.seed = 77;
    data::TrafficDataset ds = data::generate_pems_like(cfg);
    Rng rng(78);
    data::inject_mcar(ds, 0.4, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    const data::WindowSampler sampler(ds, 6, 3);
    const Matrix lap =
        graph::scaled_laplacian_from_distances(ds.geo_distances);
    baselines::NeuralBaselineConfig bcfg;
    bcfg.lookback = 6;
    bcfg.horizon = 3;
    bcfg.hidden = 6;
    bcfg.seed = 99;
    baselines::GcnLstmModel model(lap, 4, bcfg);
    core::TrainConfig tc;
    tc.max_epochs = 2;
    tc.max_train_windows = 20;
    tc.max_val_windows = 10;
    tc.seed = 5;
    core::train_model(model, sampler, sampler.split(), tc);
    return model.predict(sampler.make_window(40));
  };
  const Matrix a = run();
  const Matrix b = run();
  EXPECT_TRUE(allclose(a, b, 0.0));  // bit-identical
}

}  // namespace
}  // namespace rihgcn
