// Tape arena + fused recurrent-cell kernels (DESIGN.md §10):
//
//  * TapeArena.*    — reset()/BufferPool reuse: a reset-and-rerun pass is
//    bitwise identical to a fresh-tape pass (including with a pool dirtied
//    by a differently-shaped graph) and allocates nothing in steady state;
//    leaf() dedup; the n-ary concat node vs a binary-concat chain.
//  * FusedCell.*    — Tape::lstm_cell/gru_cell vs the unfused elementary-op
//    chains in nn::LstmCell/nn::GruCell: values AND parameter gradients must
//    match bitwise (tol = 0) at 1/2/4 threads, per the §10 parity contract.
//    Numerical gradient checks validate the hand-written backwards
//    independently of the unfused reference.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "autodiff/tape.hpp"
#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "data/windows.hpp"
#include "nn/layers.hpp"
#include "tensor/parallel.hpp"
#include "tensor/pool.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

using ad::Parameter;
using ad::Tape;
using ad::Var;

// Same idiom as test_parallel.cpp/test_csr.cpp: force threaded paths on tiny
// inputs and pin the pool width; restore defaults on destruction. (On hosts
// with fewer cores than `threads` the global pool clamps to the hardware —
// the sweep then still checks serial/threaded parity where it can.)
class BackendGuard {
 public:
  explicit BackendGuard(std::size_t threads) {
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ParallelTuning::matmul_row_grain = 2;
    ThreadPool::set_global_threads(threads);
  }
  ~BackendGuard() {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

Matrix randn(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_matrix(r, c, 1.0);
}

// ---- Fused vs unfused recurrent cells --------------------------------------

struct CellRun {
  std::vector<Matrix> h;      ///< hidden state value per step
  Matrix c;                   ///< final memory cell (LSTM)
  double loss = 0.0;
  std::vector<Matrix> grads;  ///< per parameter, in parameters() order
  std::size_t num_nodes = 0;
};

// Multi-step run so estimates receive delayed gradients through the
// recurrence; the loss reads every step's h via the n-ary concat.
template <typename Cell>
CellRun run_cell(Cell& cell, bool fused, const std::vector<Matrix>& xs) {
  cell.set_fused(fused);
  for (Parameter* p : cell.parameters()) p->zero_grad();
  Tape tape;
  typename Cell::State state = cell.initial_state(tape, xs.front().rows());
  std::vector<Var> hs;
  CellRun run;
  for (const Matrix& x : xs) {
    state = cell.step(tape, tape.constant(x), state);
    hs.push_back(state.h);
  }
  Var loss = tape.mean_all(tape.concat_cols_many(hs));
  tape.backward(loss);
  for (Var h : hs) run.h.push_back(tape.value(h));
  run.c = tape.value(state.c);
  run.loss = tape.value(loss)(0, 0);
  for (Parameter* p : cell.parameters()) run.grads.push_back(p->grad());
  run.num_nodes = tape.num_nodes();
  return run;
}

std::vector<Matrix> make_inputs(std::size_t steps, std::size_t batch,
                                std::size_t dim) {
  std::vector<Matrix> xs;
  for (std::size_t t = 0; t < steps; ++t) {
    xs.push_back(randn(batch, dim, 100 + t));
  }
  return xs;
}

void expect_same_run(const CellRun& a, const CellRun& b) {
  ASSERT_EQ(a.h.size(), b.h.size());
  for (std::size_t t = 0; t < a.h.size(); ++t) EXPECT_EQ(a.h[t], b.h[t]);
  EXPECT_EQ(a.c, b.c);
  EXPECT_EQ(a.loss, b.loss);  // bitwise: no tolerance
  ASSERT_EQ(a.grads.size(), b.grads.size());
  for (std::size_t i = 0; i < a.grads.size(); ++i) {
    EXPECT_EQ(a.grads[i], b.grads[i]);
  }
}

TEST(FusedCell, LstmMatchesUnfusedBitwiseAcrossThreads) {
  Rng rng(11);
  nn::LstmCell cell(4, 3, rng);
  const std::vector<Matrix> xs = make_inputs(3, 5, 4);
  CellRun reference;
  bool have_reference = false;
  for (std::size_t threads : {1, 2, 4}) {
    BackendGuard guard(threads);
    const CellRun fused = run_cell(cell, /*fused=*/true, xs);
    const CellRun unfused = run_cell(cell, /*fused=*/false, xs);
    expect_same_run(fused, unfused);
    EXPECT_LT(fused.num_nodes, unfused.num_nodes);
    if (!have_reference) {
      reference = fused;
      have_reference = true;
    } else {
      expect_same_run(reference, fused);  // cross-thread determinism
    }
  }
}

TEST(FusedCell, GruMatchesUnfusedBitwiseAcrossThreads) {
  Rng rng(12);
  nn::GruCell cell(4, 3, rng);
  const std::vector<Matrix> xs = make_inputs(3, 5, 4);
  CellRun reference;
  bool have_reference = false;
  for (std::size_t threads : {1, 2, 4}) {
    BackendGuard guard(threads);
    const CellRun fused = run_cell(cell, /*fused=*/true, xs);
    const CellRun unfused = run_cell(cell, /*fused=*/false, xs);
    expect_same_run(fused, unfused);
    EXPECT_LT(fused.num_nodes, unfused.num_nodes);
    if (!have_reference) {
      reference = fused;
      have_reference = true;
    } else {
      expect_same_run(reference, fused);
    }
  }
}

TEST(FusedCell, LstmStepAddsThreeNodesUnfusedAtLeastThreeTimesMore) {
  Rng rng(13);
  nn::LstmCell cell(4, 3, rng);
  const Matrix x = randn(5, 4, 200);
  Tape tape;
  auto state = cell.initial_state(tape, 5);
  Var xv = tape.constant(x);
  cell.set_fused(true);
  state = cell.step(tape, xv, state);  // warm-up: caches the parameter leaves
  std::size_t before = tape.num_nodes();
  state = cell.step(tape, xv, state);
  const std::size_t fused_nodes = tape.num_nodes() - before;
  cell.set_fused(false);
  before = tape.num_nodes();
  state = cell.step(tape, xv, state);
  const std::size_t unfused_nodes = tape.num_nodes() - before;
  EXPECT_EQ(fused_nodes, 3u);  // gates, c, h
  EXPECT_GE(unfused_nodes, 3 * fused_nodes);
}

TEST(FusedCell, GruStepAddsTwoNodes) {
  Rng rng(14);
  nn::GruCell cell(4, 3, rng);
  const Matrix x = randn(5, 4, 201);
  Tape tape;
  cell.set_fused(true);
  auto state = cell.initial_state(tape, 5);
  Var xv = tape.constant(x);
  state = cell.step(tape, xv, state);  // warm-up: caches the parameter leaves
  const std::size_t before = tape.num_nodes();
  (void)cell.step(tape, xv, state);
  EXPECT_EQ(tape.num_nodes() - before, 2u);  // gates, h
}

template <typename Cell>
void check_cell_gradients(Cell& cell, const std::vector<Matrix>& xs) {
  cell.set_fused(true);
  auto loss_value = [&]() {
    Tape tape;
    auto state = cell.initial_state(tape, xs.front().rows());
    std::vector<Var> hs;
    for (const Matrix& x : xs) {
      state = cell.step(tape, tape.constant(x), state);
      hs.push_back(state.h);
    }
    return tape.value(tape.mean_all(tape.concat_cols_many(hs)))(0, 0);
  };
  for (Parameter* p : cell.parameters()) p->zero_grad();
  {
    Tape tape;
    auto state = cell.initial_state(tape, xs.front().rows());
    std::vector<Var> hs;
    for (const Matrix& x : xs) {
      state = cell.step(tape, tape.constant(x), state);
      hs.push_back(state.h);
    }
    tape.backward(tape.mean_all(tape.concat_cols_many(hs)));
  }
  for (Parameter* p : cell.parameters()) {
    EXPECT_LT(ad::gradient_check(*p, loss_value, p->grad()), 1e-6)
        << p->name();
  }
}

TEST(FusedCell, LstmGradientCheck) {
  Rng rng(15);
  nn::LstmCell cell(3, 2, rng);
  check_cell_gradients(cell, make_inputs(3, 4, 3));
}

TEST(FusedCell, GruGradientCheck) {
  Rng rng(16);
  nn::GruCell cell(3, 2, rng);
  check_cell_gradients(cell, make_inputs(3, 4, 3));
}

// Full model: flipping use_fused_cells must not change the loss value or any
// parameter gradient (bitwise), on the real bidirectional-imputation graph.
TEST(FusedCell, RihgcnModelParity) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = 3;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(4);
  data::inject_mcar(ds, 0.4, rng);
  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);
  nz.normalize(ds);
  data::WindowSampler sampler(ds, 6, 3);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 1;
  gcfg.partition_slots = 24;
  core::HeterogeneousGraphs graphs(ds, train_end, gcfg, rng);

  core::RihgcnConfig mc;
  mc.lookback = 6;
  mc.horizon = 3;
  mc.gcn_dim = 4;
  mc.lstm_dim = 5;
  mc.cheb_order = 2;
  const data::Window w = sampler.make_window(0);

  auto run = [&](bool fused) {
    core::RihgcnConfig c = mc;
    c.use_fused_cells = fused;
    core::RihgcnModel model(graphs, ds.num_nodes(), ds.num_features(), c);
    for (Parameter* p : model.parameters()) p->zero_grad();
    Tape tape;
    Var loss = model.training_loss(tape, w);
    const double loss_val = tape.value(loss)(0, 0);
    tape.backward(loss);
    std::vector<Matrix> grads;
    for (Parameter* p : model.parameters()) grads.push_back(p->grad());
    return std::make_pair(loss_val, std::move(grads));
  };
  const auto [loss_f, grads_f] = run(true);
  const auto [loss_u, grads_u] = run(false);
  EXPECT_EQ(loss_f, loss_u);
  ASSERT_EQ(grads_f.size(), grads_u.size());
  for (std::size_t i = 0; i < grads_f.size(); ++i) {
    EXPECT_EQ(grads_f[i], grads_u[i]) << "param " << i;
  }
}

// ---- Tape arena: reset(), pool reuse, leaf dedup, n-ary concat -------------

struct GraphRun {
  double loss = 0.0;
  Matrix grad;
  std::size_t num_nodes = 0;
};

// A small graph touching matmul, broadcast, nonlinearity and a masked loss.
GraphRun run_graph(Tape& tape, Parameter& w, Parameter& b, const Matrix& x,
                   const Matrix& target, const Matrix& mask) {
  w.zero_grad();
  b.zero_grad();
  Var y = tape.tanh(tape.add_row_broadcast(
      tape.matmul(tape.constant(x), tape.leaf(w)), tape.leaf(b)));
  Var loss = tape.masked_mae(y, target, mask);
  tape.backward(loss);
  GraphRun run;
  run.loss = tape.value(loss)(0, 0);
  run.grad = w.grad();
  run.num_nodes = tape.num_nodes();
  return run;
}

TEST(TapeArena, ResetAndRerunIsBitwiseIdenticalToFreshTape) {
  Parameter w(randn(4, 3, 21), "w");
  Parameter b(Matrix(1, 3), "b");
  const Matrix x = randn(6, 4, 22);
  const Matrix target = randn(6, 3, 23);
  Matrix mask(6, 3, 1.0);
  mask(0, 0) = mask(3, 2) = 0.0;

  Tape fresh;
  const GraphRun first = run_graph(fresh, w, b, x, target, mask);

  Tape reused;
  const GraphRun warm = run_graph(reused, w, b, x, target, mask);
  EXPECT_EQ(first.loss, warm.loss);
  const std::size_t misses_after_warmup = reused.pool().misses();
  for (int i = 0; i < 3; ++i) {
    reused.reset();
    const GraphRun again = run_graph(reused, w, b, x, target, mask);
    EXPECT_EQ(first.loss, again.loss);
    EXPECT_EQ(first.grad, again.grad);
    EXPECT_EQ(first.num_nodes, again.num_nodes);
  }
  // Steady state: every buffer comes from the pool, nothing is allocated.
  EXPECT_EQ(reused.pool().misses(), misses_after_warmup);
  EXPECT_GT(reused.pool().hits(), 0u);
}

TEST(TapeArena, DirtyPoolDoesNotLeakStaleValues) {
  Parameter w(randn(4, 3, 31), "w");
  Parameter b(Matrix(1, 3), "b");
  const Matrix x = randn(6, 4, 32);
  const Matrix target = randn(6, 3, 33);
  const Matrix mask(6, 3, 1.0);

  Tape fresh;
  const GraphRun expected = run_graph(fresh, w, b, x, target, mask);

  // Dirty the pool with a differently-shaped graph first, then reuse.
  Tape reused;
  Parameter w2(randn(7, 6, 34), "w2");
  Parameter b2(randn(1, 6, 35), "b2");
  (void)run_graph(reused, w2, b2, randn(4, 7, 36), randn(4, 6, 37),
                  Matrix(4, 6, 1.0));
  reused.reset();
  const GraphRun got = run_graph(reused, w, b, x, target, mask);
  EXPECT_EQ(expected.loss, got.loss);
  EXPECT_EQ(expected.grad, got.grad);
}

TEST(TapeArena, LeafIsDeduplicatedPerResetCycle) {
  Parameter p(randn(2, 2, 41), "p");
  Tape tape;
  Var a = tape.leaf(p);
  Var b = tape.leaf(p);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(tape.num_nodes(), 1u);
  // Gradient still accumulates once per use of the shared node.
  p.zero_grad();
  tape.backward(tape.sum_all(tape.add(a, b)));
  EXPECT_EQ(p.grad()(0, 0), 2.0);
  // A reset clears the cache: the next leaf() re-snapshots the parameter.
  tape.reset();
  p.value()(0, 0) += 1.0;
  Var c = tape.leaf(p);
  EXPECT_EQ(tape.value(c), p.value());
}

TEST(TapeArena, NaryConcatMatchesBinaryChainBitwise) {
  Parameter pa(randn(3, 2, 51), "a");
  Parameter pb(randn(3, 4, 52), "b");
  Parameter pc(randn(3, 1, 53), "c");
  auto run = [&](bool nary) {
    pa.zero_grad();
    pb.zero_grad();
    pc.zero_grad();
    Tape tape;
    Var a = tape.leaf(pa), b = tape.leaf(pb), c = tape.leaf(pc);
    Var cat = nary ? tape.concat_cols_many({a, b, c})
                   : tape.concat_cols(tape.concat_cols(a, b), c);
    Matrix target(3, 7, 0.25);
    Var loss = tape.masked_mae(cat, target, Matrix(3, 7, 1.0));
    tape.backward(loss);
    std::vector<Matrix> out{tape.value(cat), pa.grad(), pb.grad(), pc.grad()};
    return out;
  };
  const auto nary = run(true);
  const auto chain = run(false);
  for (std::size_t i = 0; i < nary.size(); ++i) EXPECT_EQ(nary[i], chain[i]);
}

TEST(TapeArena, ConcatManySingleInputPassesThrough) {
  Tape tape;
  Var a = tape.constant(randn(2, 3, 61));
  Var cat = tape.concat_cols_many({a});
  EXPECT_EQ(cat.index, a.index);
}

TEST(TapeArena, BufferPoolRecyclesAndZeroes) {
  BufferPool pool;
  Matrix m = pool.acquire(3, 4);
  EXPECT_EQ(pool.misses(), 1u);
  m.fill(7.0);
  const double* data = m.data();
  pool.release(std::move(m));
  EXPECT_EQ(pool.pooled_buffers(), 1u);
  Matrix again = pool.acquire(4, 3);  // same element count, different shape
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(again.rows(), 4u);
  EXPECT_EQ(again.cols(), 3u);
  EXPECT_EQ(again.data(), data);  // storage was recycled...
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.data()[i], 0.0);  // ...and zeroed
  }
}

TEST(TapeArena, RepeatedCellRunsAreDeterministic) {
  // Back-to-back forward/backward passes over the same cell (fresh tapes,
  // grads re-zeroed) must agree bitwise — the invariant the scratch-tape
  // reuse in predict()/impute() leans on.
  Rng rng(71);
  nn::LstmCell cell(3, 2, rng);
  const std::vector<Matrix> xs = make_inputs(2, 4, 3);
  const CellRun a = run_cell(cell, true, xs);
  const CellRun b = run_cell(cell, true, xs);
  expect_same_run(a, b);
}

}  // namespace
}  // namespace rihgcn
