#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/rng.hpp"
#include "timeseries/distance.hpp"
#include "timeseries/partition.hpp"
#include "timeseries/profile.hpp"

namespace rihgcn::ts {
namespace {

std::vector<double> sine_series(std::size_t n, double phase, double freq = 1.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(freq * static_cast<double>(i) * 0.3 + phase);
  }
  return v;
}

// ---- DTW -----------------------------------------------------------------

TEST(Dtw, IdenticalSeriesIsZero) {
  const auto a = sine_series(20, 0.0);
  EXPECT_DOUBLE_EQ(dtw(a, a), 0.0);
}

TEST(Dtw, Symmetric) {
  const auto a = sine_series(15, 0.0);
  const auto b = sine_series(22, 1.0);
  EXPECT_DOUBLE_EQ(dtw(a, b), dtw(b, a));
}

TEST(Dtw, NonNegative) {
  Rng rng(1);
  for (int k = 0; k < 10; ++k) {
    std::vector<double> a(10), b(12);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    EXPECT_GE(dtw(a, b), 0.0);
  }
}

TEST(Dtw, AbsorbsTimeShift) {
  // DTW of a shifted copy is far smaller than Euclidean-style lockstep.
  const auto a = sine_series(50, 0.0);
  const auto b = sine_series(50, 0.9);  // phase-shifted copy
  double lockstep = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) lockstep += std::abs(a[i] - b[i]);
  EXPECT_LT(dtw(a, b), 0.5 * lockstep);
}

TEST(Dtw, DifferentLengths) {
  const auto a = sine_series(10, 0.0);
  const auto b = sine_series(30, 0.0);
  EXPECT_GE(dtw(a, b), 0.0);
  // Aligning a 10-sample sine against 30 samples of the same sine costs far
  // less than the worst case (30 steps x amplitude 2).
  EXPECT_LT(dtw(a, b), 30.0);
}

TEST(Dtw, ConstantVsConstant) {
  const std::vector<double> a(5, 2.0), b(8, 5.0);
  // Every alignment step costs 3; optimal path has max(5,8)=8 steps.
  EXPECT_DOUBLE_EQ(dtw(a, b), 3.0 * 8.0);
}

TEST(Dtw, EmptySeriesThrows) {
  const std::vector<double> a, b{1.0};
  EXPECT_THROW((void)dtw(a, b), std::invalid_argument);
}

TEST(Dtw, WideBandMatchesUnconstrained) {
  const auto a = sine_series(20, 0.0);
  const auto b = sine_series(20, 0.7);
  EXPECT_DOUBLE_EQ(dtw(a, b, 30), dtw(a, b));
}

TEST(Dtw, NarrowBandIsLowerBoundedByUnconstrained) {
  const auto a = sine_series(30, 0.0);
  const auto b = sine_series(30, 1.2);
  EXPECT_GE(dtw(a, b, 2), dtw(a, b));
}

TEST(DtwMultivariate, MatchesUnivariateOnOneDim) {
  const auto a = sine_series(12, 0.0);
  const auto b = sine_series(17, 0.5);
  Matrix ma(12, 1), mb(17, 1);
  for (std::size_t i = 0; i < 12; ++i) ma(i, 0) = a[i];
  for (std::size_t i = 0; i < 17; ++i) mb(i, 0) = b[i];
  EXPECT_NEAR(dtw_multivariate(ma, mb), dtw(a, b), 1e-12);
}

TEST(DtwMultivariate, DimensionMismatchThrows) {
  EXPECT_THROW((void)dtw_multivariate(Matrix(3, 2), Matrix(3, 3)), ShapeError);
}

// ---- ERP ----------------------------------------------------------------------

TEST(Erp, IdenticalIsZero) {
  const auto a = sine_series(10, 0.0);
  EXPECT_DOUBLE_EQ(erp(a, a), 0.0);
}

TEST(Erp, EmptyAgainstSeriesIsGapCost) {
  const std::vector<double> a;
  const std::vector<double> b{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(erp(a, b, 0.0), 6.0);
}

TEST(Erp, TriangleInequalityOnRandomSeries) {
  // ERP is a metric — verify on random triples.
  Rng rng(7);
  for (int k = 0; k < 20; ++k) {
    std::vector<double> a(8), b(10), c(6);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    for (auto& x : c) x = rng.normal();
    EXPECT_LE(erp(a, c), erp(a, b) + erp(b, c) + 1e-9);
  }
}

TEST(Erp, Symmetric) {
  const auto a = sine_series(9, 0.3);
  const auto b = sine_series(14, 1.1);
  EXPECT_DOUBLE_EQ(erp(a, b), erp(b, a));
}

// ---- LCSS ---------------------------------------------------------------------

TEST(Lcss, IdenticalIsZeroDistance) {
  const auto a = sine_series(10, 0.0);
  EXPECT_DOUBLE_EQ(lcss_distance(a, a, 0.1, 2), 0.0);
}

TEST(Lcss, TotallyDifferentIsOne) {
  const std::vector<double> a(5, 0.0), b(5, 100.0);
  EXPECT_DOUBLE_EQ(lcss_distance(a, b, 0.5, 5), 1.0);
}

TEST(Lcss, InUnitInterval) {
  Rng rng(9);
  for (int k = 0; k < 10; ++k) {
    std::vector<double> a(7), b(9);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    const double d = lcss_distance(a, b, 0.5, 3);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Lcss, EmptyIsMaxDistance) {
  const std::vector<double> a;
  const std::vector<double> b{1.0};
  EXPECT_DOUBLE_EQ(lcss_distance(a, b, 0.1, 1), 1.0);
}

// ---- series_distance dispatch / pairwise ----------------------------------

TEST(SeriesDistance, DispatchesAllKinds) {
  const auto a = sine_series(10, 0.0);
  const auto b = sine_series(10, 0.4);
  EXPECT_GE(series_distance(SeriesDistance::kDtw, a, b), 0.0);
  EXPECT_GE(series_distance(SeriesDistance::kErp, a, b), 0.0);
  EXPECT_GE(series_distance(SeriesDistance::kLcss, a, b), 0.0);
}

TEST(PairwiseSeriesDistance, SymmetricZeroDiagonal) {
  Rng rng(11);
  const Matrix series = rng.normal_matrix(5, 30, 1.0);
  const Matrix d = pairwise_series_distance(series);
  EXPECT_EQ(d.rows(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(d(i, j), d(j, i));
  }
}

TEST(PairwiseSeriesDistance, SimilarRowsCloser) {
  Matrix series(3, 40);
  const auto base = sine_series(40, 0.0);
  const auto near = sine_series(40, 0.15);
  const auto far = sine_series(40, 0.0, 5.0);  // different frequency
  for (std::size_t i = 0; i < 40; ++i) {
    series(0, i) = base[i];
    series(1, i) = near[i];
    series(2, i) = far[i];
  }
  const Matrix d = pairwise_series_distance(series);
  EXPECT_LT(d(0, 1), d(0, 2));
}

// ---- Partition -----------------------------------------------------------------

TEST(Partition, EqualSplitProperties) {
  const Partition p = Partition::equal_split(24, 4);
  EXPECT_TRUE(p.valid(24));
  EXPECT_EQ(p.num_intervals(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(p.length(i), 6u);
}

TEST(Partition, IntervalOf) {
  const Partition p = Partition::equal_split(24, 4);
  EXPECT_EQ(p.interval_of(0), 0u);
  EXPECT_EQ(p.interval_of(5), 0u);
  EXPECT_EQ(p.interval_of(6), 1u);
  EXPECT_EQ(p.interval_of(23), 3u);
  EXPECT_THROW((void)p.interval_of(24), std::out_of_range);
}

TEST(Partition, EqualSplitRejectsBadArgs) {
  EXPECT_THROW((void)Partition::equal_split(5, 0), std::invalid_argument);
  EXPECT_THROW((void)Partition::equal_split(5, 6), std::invalid_argument);
}

TEST(Partition, ValidityChecks) {
  Partition p;
  EXPECT_FALSE(p.valid(10));
  p.boundaries = {0, 5, 10};
  EXPECT_TRUE(p.valid(10));
  p.boundaries = {0, 5, 5, 10};
  EXPECT_FALSE(p.valid(10));  // empty interval
  p.boundaries = {1, 5, 10};
  EXPECT_FALSE(p.valid(10));  // must start at 0
}

Matrix rush_hour_profile(std::size_t slots, std::size_t nodes) {
  // Two sharp dips (morning/evening rush) — the partitioner should separate
  // the rush intervals from the quiet ones.
  Matrix p(slots, nodes);
  for (std::size_t s = 0; s < slots; ++s) {
    const double hour = static_cast<double>(s) * 24.0 / static_cast<double>(slots);
    const double dip = std::exp(-(hour - 8.0) * (hour - 8.0) / 2.0) +
                       std::exp(-(hour - 17.5) * (hour - 17.5) / 2.0);
    for (std::size_t n = 0; n < nodes; ++n) {
      p(s, n) = 65.0 - 30.0 * dip * (1.0 + 0.1 * static_cast<double>(n));
    }
  }
  return p;
}

TEST(Partitioner, SatisfiedConstraintsForPaperSettings) {
  TimelinePartitioner part(rush_hour_profile(24, 4));
  Rng rng(1);
  const Partition p = part.partition(4, rng);
  EXPECT_TRUE(p.valid(24));
  EXPECT_TRUE(part.satisfies(p));
  EXPECT_EQ(p.num_intervals(), 4u);
}

TEST(Partitioner, BeatsOrMatchesEqualSplit) {
  TimelinePartitioner part(rush_hour_profile(24, 3));
  Rng rng(2);
  const Partition best = part.partition(4, rng);
  const Partition equal = Partition::equal_split(24, 4);
  EXPECT_GE(part.objective(best), part.objective(equal) - 1e-9);
}

TEST(Partitioner, SingleIntervalIsTrivial) {
  TimelinePartitioner part(rush_hour_profile(24, 2));
  Rng rng(3);
  const Partition p = part.partition(1, rng);
  EXPECT_EQ(p.num_intervals(), 1u);
  EXPECT_EQ(p.boundaries.front(), 0u);
  EXPECT_EQ(p.boundaries.back(), 24u);
}

TEST(Partitioner, RejectsBadM) {
  TimelinePartitioner part(rush_hour_profile(24, 2));
  Rng rng(4);
  EXPECT_THROW((void)part.partition(0, rng), std::invalid_argument);
  EXPECT_THROW((void)part.partition(25, rng), std::invalid_argument);
}

TEST(Partitioner, MaxIntervalsUniquePartition) {
  TimelinePartitioner part(rush_hour_profile(12, 2));
  Rng rng(5);
  const Partition p = part.partition(12, rng);
  EXPECT_EQ(p.num_intervals(), 12u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(p.length(i), 1u);
}

TEST(Partitioner, IntervalDistanceIsMemoizedConsistently) {
  TimelinePartitioner part(rush_hour_profile(24, 2));
  const double d1 = part.interval_distance(0, 6, 6, 12);
  const double d2 = part.interval_distance(0, 6, 6, 12);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GE(d1, 0.0);
}

TEST(Partitioner, EmptyProfileThrows) {
  EXPECT_THROW(TimelinePartitioner{Matrix{}}, std::invalid_argument);
}

// Sweep M like Figure 4 does: all partitions must satisfy constraints.
class PartitionSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweepTest, ConstraintsHoldAcrossM) {
  const auto m = static_cast<std::size_t>(GetParam());
  PartitionConstraints c;
  c.min_len = 1;
  c.max_len = std::max<std::size_t>(1, 2 * 24 / m);
  TimelinePartitioner part(rush_hour_profile(24, 3), c);
  Rng rng(6);
  const Partition p = part.partition(m, rng);
  EXPECT_EQ(p.num_intervals(), m);
  EXPECT_TRUE(p.valid(24));
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_GE(p.length(i), c.min_len);
    EXPECT_LE(p.length(i), c.max_len);
  }
}

INSTANTIATE_TEST_SUITE_P(NumGraphs, PartitionSweepTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 24));

// ---- HistoricalProfile ------------------------------------------------------

TEST(Profile, AveragesAcrossDays) {
  // 2 days, 4 slots/day, 1 node, 1 feature; slot s on day k has value
  // s + 10k. The profile must average across days: slot s -> s + 5.
  std::vector<Matrix> values, mask;
  for (std::size_t t = 0; t < 8; ++t) {
    Matrix v(1, 1);
    v(0, 0) = static_cast<double>(t % 4) + 10.0 * static_cast<double>(t / 4);
    values.push_back(v);
    mask.emplace_back(1, 1, 1.0);
  }
  const HistoricalProfile prof(values, mask, 4);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(prof.node_profiles()(0, s), static_cast<double>(s) + 5.0);
  }
}

TEST(Profile, RespectsMask) {
  std::vector<Matrix> values, mask;
  for (std::size_t t = 0; t < 4; ++t) {
    Matrix v(1, 1);
    v(0, 0) = static_cast<double>(t + 1);
    values.push_back(v);
    Matrix m(1, 1);
    m(0, 0) = t % 2 == 0 ? 1.0 : 0.0;  // only even timesteps observed
    mask.push_back(m);
  }
  const HistoricalProfile prof(values, mask, 2);
  // Slot 0 observed (t=0: 1, t=2: 3) -> 2. Slot 1 never observed -> global
  // node mean of observed values (1+3)/2 = 2.
  EXPECT_DOUBLE_EQ(prof.node_profiles()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(prof.node_profiles()(0, 1), 2.0);
}

TEST(Profile, DayProfileAggregates) {
  std::vector<Matrix> values, mask;
  for (std::size_t t = 0; t < 8; ++t) {
    Matrix v(2, 1);
    v(0, 0) = static_cast<double>(t % 8);
    v(1, 0) = 1.0;
    values.push_back(v);
    mask.emplace_back(2, 1, 1.0);
  }
  const HistoricalProfile prof(values, mask, 8);
  const Matrix day = prof.day_profile(4);  // pairs of slots averaged
  EXPECT_EQ(day.rows(), 4u);
  EXPECT_EQ(day.cols(), 2u);
  EXPECT_DOUBLE_EQ(day(0, 0), 0.5);  // mean of slots 0,1
  EXPECT_DOUBLE_EQ(day(3, 0), 6.5);  // mean of slots 6,7
}

TEST(Profile, IntervalSeriesSlices) {
  std::vector<Matrix> values(6, Matrix(1, 1, 2.0));
  std::vector<Matrix> mask(6, Matrix(1, 1, 1.0));
  const HistoricalProfile prof(values, mask, 6);
  const Matrix s = prof.interval_series(2, 5);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_THROW((void)prof.interval_series(3, 3), std::invalid_argument);
}

TEST(Profile, InputValidation) {
  std::vector<Matrix> values(2, Matrix(1, 1));
  std::vector<Matrix> mask(1, Matrix(1, 1));
  EXPECT_THROW(HistoricalProfile(values, mask, 2), std::invalid_argument);
  EXPECT_THROW(HistoricalProfile({}, {}, 2), std::invalid_argument);
  std::vector<Matrix> mask2(2, Matrix(1, 1));
  EXPECT_THROW(HistoricalProfile(values, mask2, 0), std::invalid_argument);
  EXPECT_THROW(HistoricalProfile(values, mask2, 2, /*feature=*/5),
               std::invalid_argument);
}

}  // namespace
}  // namespace rihgcn::ts
