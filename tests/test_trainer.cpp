#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "baselines/neural.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "graph/graph.hpp"

namespace rihgcn::core {
namespace {

struct Fixture {
  data::TrafficDataset ds;
  Matrix lap;
  std::unique_ptr<data::WindowSampler> sampler;
  data::SplitIndices split;

  Fixture() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 5;
    cfg.num_days = 5;
    cfg.steps_per_day = 48;
    cfg.seed = 21;
    ds = data::generate_pems_like(cfg);
    Rng rng(22);
    data::inject_mcar(ds, 0.3, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    lap = graph::scaled_laplacian_from_distances(ds.geo_distances);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    split = sampler->split();
  }

  baselines::NeuralBaselineConfig nb_config() const {
    baselines::NeuralBaselineConfig c;
    c.lookback = 6;
    c.horizon = 3;
    c.hidden = 8;
    c.cheb_order = 2;
    return c;
  }
};

TEST(Trainer, ImprovesValidationMae) {
  Fixture f;
  baselines::GcnLstmModel model(f.lap, 4, f.nb_config());
  const EvalResult before =
      evaluate_prediction(model, *f.sampler, f.split.val, nullptr, 0, 40);
  TrainConfig cfg;
  cfg.max_epochs = 5;
  cfg.max_train_windows = 80;
  cfg.max_val_windows = 40;
  const TrainReport report = train_model(model, *f.sampler, f.split, cfg);
  EXPECT_EQ(report.val_maes.size(), report.epochs_run);
  EXPECT_LT(report.best_val_mae, before.mae);
}

TEST(Trainer, TrainLossesRecordedPerEpoch) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  TrainConfig cfg;
  cfg.max_epochs = 3;
  cfg.max_train_windows = 40;
  cfg.max_val_windows = 20;
  const TrainReport report = train_model(model, *f.sampler, f.split, cfg);
  EXPECT_EQ(report.train_losses.size(), 3u);
  EXPECT_EQ(report.epochs_run, 3u);
  for (const double l : report.train_losses) EXPECT_GT(l, 0.0);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  // HA-style zero-parameter model can't improve => stop after `patience`.
  Fixture f;
  class FrozenModel final : public ForecastModel {
   public:
    explicit FrozenModel(std::size_t horizon) : horizon_(horizon) {}
    [[nodiscard]] std::string name() const override { return "frozen"; }
    [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
      return {&dummy_};
    }
    [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                        const data::Window&) override {
      // Loss independent of the parameter: validation never improves.
      return tape.constant(Matrix(1, 1, 1.0));
    }
    [[nodiscard]] Matrix predict(const data::Window& w) override {
      return Matrix(w.x_obs.front().rows(), horizon_, 0.5);
    }

   private:
    std::size_t horizon_;
    ad::Parameter dummy_{Matrix(1, 1), "dummy"};
  };
  FrozenModel model(3);
  TrainConfig cfg;
  cfg.max_epochs = 50;
  cfg.patience = 3;
  cfg.max_train_windows = 10;
  cfg.max_val_windows = 10;
  const TrainReport report = train_model(model, *f.sampler, f.split, cfg);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_LE(report.epochs_run, 5u);  // 1 best + 3 bad + margin
}

TEST(Trainer, RestoresBestParameters) {
  Fixture f;
  baselines::FcGcnModel model(f.lap, 4, f.nb_config());
  TrainConfig cfg;
  cfg.max_epochs = 6;
  cfg.max_train_windows = 60;
  cfg.max_val_windows = 30;
  cfg.restore_best = true;
  const TrainReport report = train_model(model, *f.sampler, f.split, cfg);
  // After restore, evaluating on the val subsample reproduces ~best MAE.
  // (Same windows: the subsample is deterministic for a given seed.)
  double best = 1e300;
  for (const double v : report.val_maes) best = std::min(best, v);
  EXPECT_NEAR(report.best_val_mae, best, 1e-12);
}

TEST(Trainer, EmptyTrainSplitThrows) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  data::SplitIndices empty;
  TrainConfig cfg;
  EXPECT_THROW((void)train_model(model, *f.sampler, empty, cfg),
               std::invalid_argument);
}

TEST(Trainer, ZeroBatchSizeRejected) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  TrainConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW((void)train_model(model, *f.sampler, f.split, cfg),
               std::invalid_argument);
}

TEST(Trainer, ZeroThreadsRejected) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  TrainConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW((void)train_model(model, *f.sampler, f.split, cfg),
               std::invalid_argument);
}

TEST(Trainer, ResumeWithoutCheckpointPathRejected) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  TrainConfig cfg;
  cfg.resume = true;
  EXPECT_THROW((void)train_model(model, *f.sampler, f.split, cfg),
               std::invalid_argument);
}

TEST(Trainer, EmptyValSplitDegradesToFixedEpochs) {
  // No validation data: all epochs run, no early stop, final params kept,
  // val_maes mirror the train loss (documented in trainer.hpp).
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  data::SplitIndices split = f.split;
  split.val.clear();
  TrainConfig cfg;
  cfg.max_epochs = 3;
  cfg.patience = 1;  // would stop instantly if early stopping were active
  cfg.max_train_windows = 24;
  const TrainReport report = train_model(model, *f.sampler, split, cfg);
  EXPECT_EQ(report.epochs_run, 3u);
  EXPECT_FALSE(report.early_stopped);
  ASSERT_EQ(report.val_maes.size(), 3u);
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(report.val_maes[e], report.train_losses[e]);
  }
  EXPECT_EQ(report.best_val_mae, report.train_losses.back());
}

TEST(Trainer, SubsampleCapsRespected) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  TrainConfig cfg;
  cfg.max_epochs = 1;
  cfg.max_train_windows = 8;
  cfg.batch_size = 4;
  cfg.max_val_windows = 5;
  const TrainReport report = train_model(model, *f.sampler, f.split, cfg);
  EXPECT_EQ(report.epochs_run, 1u);  // and it completes quickly
}

// ---- Evaluation helpers ---------------------------------------------------

TEST(Evaluate, PredictionErrorsOfPerfectModelAreZero) {
  Fixture f;
  class OracleModel final : public ForecastModel {
   public:
    explicit OracleModel(std::size_t horizon) : horizon_(horizon) {}
    [[nodiscard]] std::string name() const override { return "oracle"; }
    [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
      return {};
    }
    [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                        const data::Window&) override {
      return tape.constant(Matrix(1, 1));
    }
    [[nodiscard]] Matrix predict(const data::Window& w) override {
      Matrix out(w.y.front().rows(), horizon_);
      for (std::size_t t = 0; t < horizon_; ++t) out.set_cols(t, w.y[t]);
      return out;
    }

   private:
    std::size_t horizon_;
  };
  OracleModel oracle(3);
  const EvalResult r =
      evaluate_prediction(oracle, *f.sampler, f.split.test, nullptr);
  EXPECT_DOUBLE_EQ(r.mae, 0.0);
  EXPECT_DOUBLE_EQ(r.rmse, 0.0);
}

TEST(Evaluate, HorizonPrefixRestricts) {
  Fixture f;
  class StepwiseModel final : public ForecastModel {
   public:
    [[nodiscard]] std::string name() const override { return "step"; }
    [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
      return {};
    }
    [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                        const data::Window&) override {
      return tape.constant(Matrix(1, 1));
    }
    [[nodiscard]] Matrix predict(const data::Window& w) override {
      // Perfect at step 0, off by 1 at later steps.
      Matrix out(w.y.front().rows(), 3);
      for (std::size_t t = 0; t < 3; ++t) {
        Matrix col = w.y[t];
        if (t > 0) col.apply([](double v) { return v + 1.0; });
        out.set_cols(t, col);
      }
      return out;
    }
  };
  StepwiseModel model;
  const EvalResult first =
      evaluate_prediction(model, *f.sampler, f.split.test, nullptr, 1);
  const EvalResult all =
      evaluate_prediction(model, *f.sampler, f.split.test, nullptr, 0);
  EXPECT_DOUBLE_EQ(first.mae, 0.0);
  EXPECT_NEAR(all.mae, 2.0 / 3.0, 1e-12);
}

TEST(Evaluate, ImputationReturnsMinusOneForNonImputingModel) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  const std::vector<Matrix> holdout(f.ds.num_timesteps(),
                                    Matrix(5, 4, 0.0));
  const EvalResult r = evaluate_imputation(model, *f.sampler, f.split.test,
                                           holdout, nullptr);
  EXPECT_EQ(r.mae, -1.0);
}

TEST(Evaluate, EmptyIndicesGiveMinusOne) {
  Fixture f;
  baselines::FcLstmModel model(4, f.nb_config());
  const EvalResult r =
      evaluate_prediction(model, *f.sampler, {}, nullptr);
  EXPECT_EQ(r.mae, -1.0);
}

}  // namespace
}  // namespace rihgcn::core
