#!/usr/bin/env python3
"""CI perf smoke gate: diff a fresh bench_micro --json run against the
committed BENCH_micro.json baseline.

Usage:
    tools/check_bench.py BASELINE.json FRESH.json [--threshold 0.25]
                         [--advisory]

Rows are keyed by (name, n, threads). Two row classes:
  * timed rows — ns_per_op is a median over timing windows
    (bench/harness.cpp measure_ns_per_op). The gate fails when the fresh
    median exceeds the baseline by more than --threshold (default +25%,
    wide enough to absorb shared-runner noise while catching real
    regressions like an accidentally serialized kernel).
  * counter rows (`"kind": "counter"`; name-prefix fallback for old
    baselines) — deterministic program facts, not timings. Any change at all
    fails: a new allocation on the steady-state path or a fatter tape is a
    regression regardless of speed.

Rows only present in one file are reported but never fail the gate —
benches grow new rows and retire old ones across PRs.

A baseline row carrying `"informational": true` is never gated either: all
its differences (timing or counter) are printed as notes. This is how a
freshly-added row rides one PR without a trusted baseline — once its noise
floor is known, the flag is dropped and the row joins the gate.

--advisory prints the same report but always exits 0 (the CI job runs in
this mode first; the flag is dropped once the runner noise floor is known).
"""

from __future__ import annotations

import argparse
import json
import sys

# Counter-row prefixes: fallback classification for rows written before the
# harness stamped an explicit "kind" field (see module docstring).
COUNTER_PREFIXES = ("tape_nodes_", "pool_steady_allocs")


def is_counter(row: dict) -> bool:
    """A row is a counter iff it says so (`"kind": "counter"`, written by
    bench/harness.cpp) — with a name-prefix fallback for baselines generated
    before the field existed."""
    kind = row.get("kind")
    if kind is not None:
        return kind == "counter"
    return row["name"].startswith(COUNTER_PREFIXES)


def load_rows(path: str) -> dict[tuple[str, int, int], dict]:
    try:
        with open(path, encoding="utf-8") as fh:
            rows = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")
    if not isinstance(rows, list):
        sys.exit(f"check_bench: {path}: expected a JSON array of rows")
    table: dict[tuple[str, int, int], dict] = {}
    for row in rows:
        key = (row["name"], int(row["n"]), int(row["threads"]))
        if key in table:
            sys.exit(f"check_bench: {path}: duplicate row {key}")
        table[key] = row
    return table


def fmt_key(key: tuple[str, int, int]) -> str:
    name, n, threads = key
    return f"{name} (n={n}, {threads}T)"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail on bench_micro perf regressions vs a baseline."
    )
    parser.add_argument("baseline", help="committed BENCH_micro.json")
    parser.add_argument("fresh", help="bench_micro --json output to check")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed relative median slowdown (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be > 0")

    base = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    failures: list[str] = []
    improved = 0
    compared = 0
    for key in sorted(base.keys() & fresh.keys()):
        old = float(base[key]["ns_per_op"])
        new = float(fresh[key]["ns_per_op"])
        if base[key].get("informational"):
            print(
                f"  info (not gated)  {fmt_key(key)}: {old:g} -> {new:g} ns/op"
            )
            continue
        compared += 1
        if is_counter(base[key]) or is_counter(fresh[key]):
            if new != old:
                failures.append(
                    f"COUNTER CHANGED  {fmt_key(key)}: {old:g} -> {new:g}"
                )
            continue
        if old <= 0.0:  # degenerate baseline: nothing meaningful to gate on
            print(f"  skip (zero baseline)  {fmt_key(key)}")
            continue
        ratio = new / old
        if ratio > 1.0 + args.threshold:
            failures.append(
                f"REGRESSION  {fmt_key(key)}: {old:.0f} -> {new:.0f} ns/op "
                f"({(ratio - 1.0) * 100:+.1f}%, limit +{args.threshold * 100:.0f}%)"
            )
        elif ratio < 1.0 - args.threshold:
            improved += 1
            print(
                f"  improved  {fmt_key(key)}: {old:.0f} -> {new:.0f} ns/op "
                f"({(ratio - 1.0) * 100:+.1f}%)"
            )

    for key in sorted(base.keys() - fresh.keys()):
        print(f"  note: baseline-only row (retired?)  {fmt_key(key)}")
    for key in sorted(fresh.keys() - base.keys()):
        print(f"  note: new row (no baseline yet)     {fmt_key(key)}")

    print(
        f"check_bench: {compared} rows compared, {improved} improved, "
        f"{len(failures)} over threshold"
    )
    for line in failures:
        print(f"  {line}")
    if failures and args.advisory:
        print("check_bench: ADVISORY mode — regressions reported, exit 0")
        return 0
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
