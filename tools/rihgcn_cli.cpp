// rihgcn — command-line interface over the library, the artifact a
// downstream user runs before writing any C++:
//
//   rihgcn generate --kind pems --out city.ds --missing 0.4
//   rihgcn info     --data city.ds
//   rihgcn train    --data city.ds --out model.ckpt --epochs 12
//   rihgcn evaluate --data city.ds --ckpt model.ckpt
//   rihgcn forecast --data city.ds --ckpt model.ckpt --window 1200
//
// Checkpoints are self-describing: a config header (so `evaluate` can
// rebuild the exact architecture) followed by the parameter blob. Graphs
// are rebuilt deterministically from the dataset + the seed stored in the
// checkpoint.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/online.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/missing.hpp"
#include "nn/optim.hpp"

using namespace rihgcn;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::runtime_error("expected --flag, got: " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "1";  // boolean flag
    }
  }
  return args;
}

std::string get(const Args& a, const std::string& key,
                const std::string& fallback) {
  auto it = a.find(key);
  return it == a.end() ? fallback : it->second;
}

std::size_t get_size(const Args& a, const std::string& key,
                     std::size_t fallback) {
  auto it = a.find(key);
  return it == a.end() ? fallback : std::stoull(it->second);
}

double get_double(const Args& a, const std::string& key, double fallback) {
  auto it = a.find(key);
  return it == a.end() ? fallback : std::stod(it->second);
}

std::string require(const Args& a, const std::string& key) {
  auto it = a.find(key);
  if (it == a.end()) throw std::runtime_error("missing required --" + key);
  return it->second;
}

// ---- Checkpoint format ------------------------------------------------------

struct CheckpointMeta {
  core::RihgcnConfig model;
  std::size_t num_temporal_graphs = 4;
  std::uint64_t graph_seed = 17;
};

void save_checkpoint(const std::string& path, const CheckpointMeta& meta,
                     core::RihgcnModel& model) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open checkpoint for write");
  os << "rihgcn-ckpt v1\n";
  os << meta.model.lookback << " " << meta.model.horizon << " "
     << meta.model.gcn_dim << " " << meta.model.lstm_dim << " "
     << meta.model.cheb_order << " " << meta.model.hgcn_layers << " "
     << (meta.model.cell == nn::CellKind::kGru ? 1 : 0) << " "
     << meta.model.lambda << " " << (meta.model.bidirectional ? 1 : 0) << " "
     << meta.model.seed << " " << meta.num_temporal_graphs << " "
     << meta.graph_seed << "\n";
  nn::save_parameters(os, model.parameters());
}

CheckpointMeta load_checkpoint_meta(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (magic != "rihgcn-ckpt" || version != "v1") {
    throw std::runtime_error("bad checkpoint header");
  }
  CheckpointMeta meta;
  int gru = 0, bidir = 1;
  is >> meta.model.lookback >> meta.model.horizon >> meta.model.gcn_dim >>
      meta.model.lstm_dim >> meta.model.cheb_order >>
      meta.model.hgcn_layers >> gru >> meta.model.lambda >> bidir >>
      meta.model.seed >> meta.num_temporal_graphs >> meta.graph_seed;
  if (!is) throw std::runtime_error("truncated checkpoint header");
  meta.model.cell = gru != 0 ? nn::CellKind::kGru : nn::CellKind::kLstm;
  meta.model.bidirectional = bidir != 0;
  return meta;
}

// ---- Shared pipeline pieces ---------------------------------------------------

struct LoadedData {
  data::TrafficDataset ds;  // normalized
  std::size_t train_end = 0;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
};

LoadedData load_and_normalize(const std::string& path) {
  LoadedData out;
  out.ds = data::load_dataset_file(path);
  out.train_end = out.ds.num_timesteps() * 7 / 10;
  out.normalizer =
      std::make_unique<data::ZScoreNormalizer>(out.ds, out.train_end);
  out.normalizer->normalize(out.ds);
  return out;
}

// ---- Subcommands ------------------------------------------------------------

int cmd_generate(const Args& args) {
  const std::string kind = get(args, "kind", "pems");
  const std::string out = require(args, "out");
  data::TrafficDataset ds;
  if (kind == "pems") {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = get_size(args, "nodes", cfg.num_nodes);
    cfg.num_days = get_size(args, "days", cfg.num_days);
    cfg.steps_per_day = get_size(args, "steps-per-day", cfg.steps_per_day);
    cfg.seed = get_size(args, "seed", 42);
    ds = data::generate_pems_like(cfg);
  } else if (kind == "stampede") {
    data::StampedeLikeConfig cfg;
    cfg.num_segments = get_size(args, "nodes", cfg.num_segments);
    cfg.num_days = get_size(args, "days", cfg.num_days);
    cfg.steps_per_day = get_size(args, "steps-per-day", cfg.steps_per_day);
    cfg.seed = get_size(args, "seed", 43);
    ds = data::generate_stampede_like(cfg);
  } else if (kind == "airquality") {
    data::AirQualityConfig cfg;
    cfg.num_stations = get_size(args, "nodes", cfg.num_stations);
    cfg.num_days = get_size(args, "days", cfg.num_days);
    cfg.steps_per_day = get_size(args, "steps-per-day", cfg.steps_per_day);
    cfg.seed = get_size(args, "seed", 44);
    ds = data::generate_air_quality_like(cfg);
  } else {
    throw std::runtime_error("unknown --kind (pems|stampede|airquality)");
  }
  const double missing = get_double(args, "missing", 0.0);
  if (missing > 0.0) {
    Rng rng(get_size(args, "seed", 42) + 1);
    const std::string mode = get(args, "missing-mode", "reading");
    if (mode == "entry") {
      data::inject_mcar(ds, missing, rng);
    } else if (mode == "reading") {
      data::inject_mcar_readings(ds, missing, rng);
    } else if (mode == "block") {
      data::inject_block_missing(ds, missing,
                                 get_size(args, "block-len", 12), rng);
    } else {
      throw std::runtime_error("unknown --missing-mode (entry|reading|block)");
    }
  }
  data::save_dataset_file(out, ds);
  std::printf("wrote %s: %zu nodes x %zu features x %zu steps, %.1f%% missing\n",
              out.c_str(), ds.num_nodes(), ds.num_features(),
              ds.num_timesteps(), 100.0 * ds.missing_rate());
  return 0;
}

int cmd_info(const Args& args) {
  const data::TrafficDataset ds =
      data::load_dataset_file(require(args, "data"));
  std::printf("name:          %s\n", ds.name.c_str());
  std::printf("nodes:         %zu\n", ds.num_nodes());
  std::printf("features:      %zu\n", ds.num_features());
  std::printf("timesteps:     %zu (%zu/day -> %.1f days)\n",
              ds.num_timesteps(), ds.steps_per_day,
              static_cast<double>(ds.num_timesteps()) /
                  static_cast<double>(ds.steps_per_day));
  std::printf("missing rate:  %.2f%%\n", 100.0 * ds.missing_rate());
  double lo = 1e300, hi = -1e300;
  for (const Matrix& x : ds.truth) {
    lo = std::min(lo, x.min());
    hi = std::max(hi, x.max());
  }
  std::printf("value range:   [%.2f, %.2f]\n", lo, hi);
  return 0;
}

int cmd_train(const Args& args) {
  LoadedData d = load_and_normalize(require(args, "data"));
  const std::string out = require(args, "out");
  CheckpointMeta meta;
  meta.model.lookback = get_size(args, "lookback", 12);
  meta.model.horizon = get_size(args, "horizon", 12);
  meta.model.gcn_dim = get_size(args, "gcn-dim", 12);
  meta.model.lstm_dim = get_size(args, "lstm-dim", 24);
  meta.model.lambda = get_double(args, "lambda", 1.0);
  meta.model.seed = get_size(args, "seed", 7);
  if (get(args, "cell", "lstm") == "gru") {
    meta.model.cell = nn::CellKind::kGru;
  }
  meta.num_temporal_graphs = get_size(args, "graphs", 4);
  meta.graph_seed = get_size(args, "graph-seed", 17);

  Rng rng(meta.graph_seed);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = meta.num_temporal_graphs;
  const core::HeterogeneousGraphs graphs(d.ds, d.train_end, gcfg, rng);
  core::RihgcnModel model(graphs, d.ds.num_nodes(), d.ds.num_features(),
                          meta.model);
  const data::WindowSampler sampler(d.ds, meta.model.lookback,
                                    meta.model.horizon);
  core::TrainConfig tc;
  tc.max_epochs = get_size(args, "epochs", 10);
  tc.max_train_windows = get_size(args, "train-windows", 200);
  tc.max_val_windows = get_size(args, "val-windows", 48);
  tc.num_threads = get_size(args, "threads", 1);
  tc.verbose = args.count("quiet") == 0;
  // Durable training checkpoints (crash recovery): --checkpoint writes a
  // CRC-verified rihgcn-train-ckpt file every --checkpoint-every epochs;
  // --resume continues from it (same seed/batch/threads => bitwise-identical
  // results to an uninterrupted run).
  tc.checkpoint_path = get(args, "checkpoint", "");
  tc.checkpoint_every = get_size(args, "checkpoint-every", 1);
  tc.resume = args.count("resume") > 0;
  const core::TrainReport report =
      core::train_model(model, sampler, sampler.split(), tc);
  save_checkpoint(out, meta, model);
  std::printf("trained %zu epochs (best val MAE %.4f), checkpoint: %s\n",
              report.epochs_run, report.best_val_mae, out.c_str());
  if (report.resumed_epoch > 0) {
    std::printf("resumed from epoch %zu\n", report.resumed_epoch);
  }
  if (!report.guard.clean()) {
    std::printf(
        "numerical guard intervened: %zu batches skipped "
        "(%zu non-finite losses, %zu non-finite grads, %zu spikes), "
        "%zu LR backoffs, %zu rollbacks\n",
        report.guard.batches_skipped, report.guard.nonfinite_losses,
        report.guard.nonfinite_grads, report.guard.loss_spikes,
        report.guard.lr_backoffs, report.guard.rollbacks);
  }
  return 0;
}

/// Rebuild graphs+model from a checkpoint against a dataset.
struct RestoredModel {
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
  CheckpointMeta meta;
};

RestoredModel restore(const std::string& ckpt_path, const LoadedData& d) {
  std::ifstream is(ckpt_path);
  if (!is) throw std::runtime_error("cannot open checkpoint");
  RestoredModel r;
  r.meta = load_checkpoint_meta(is);
  Rng rng(r.meta.graph_seed);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = r.meta.num_temporal_graphs;
  r.graphs = std::make_unique<core::HeterogeneousGraphs>(d.ds, d.train_end,
                                                         gcfg, rng);
  r.model = std::make_unique<core::RihgcnModel>(
      *r.graphs, d.ds.num_nodes(), d.ds.num_features(), r.meta.model);
  nn::load_parameters(is, r.model->parameters());
  return r;
}

int cmd_evaluate(const Args& args) {
  LoadedData d = load_and_normalize(require(args, "data"));
  RestoredModel r = restore(require(args, "ckpt"), d);
  const data::WindowSampler sampler(d.ds, r.meta.model.lookback,
                                    r.meta.model.horizon);
  const data::SplitIndices split = sampler.split();
  const std::size_t cap = get_size(args, "max-windows", 200);
  for (const std::size_t prefix : {3ul, 6ul, 12ul}) {
    if (prefix > r.meta.model.horizon) continue;
    const core::EvalResult res = core::evaluate_prediction(
        *r.model, sampler, split.test, d.normalizer.get(), prefix, cap);
    std::printf("horizon %2zu steps: MAE %.4f  RMSE %.4f\n", prefix, res.mae,
                res.rmse);
  }
  return 0;
}

int cmd_forecast(const Args& args) {
  LoadedData d = load_and_normalize(require(args, "data"));
  RestoredModel r = restore(require(args, "ckpt"), d);
  const data::WindowSampler sampler(d.ds, r.meta.model.lookback,
                                    r.meta.model.horizon);
  const std::size_t at = get_size(args, "window", sampler.num_windows() - 1);
  if (at >= sampler.num_windows()) {
    throw std::runtime_error("--window out of range");
  }
  const data::Window w = sampler.make_window(at);
  const Matrix pred = r.model->predict(w);
  std::printf("forecast from timestep %zu (slot %zu):\n", at, w.slot);
  std::printf("%-6s", "node");
  for (std::size_t h = 0; h < pred.cols(); ++h) {
    std::printf("  +%zustep", h + 1);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    std::printf("#%-5zu", i);
    for (std::size_t h = 0; h < pred.cols(); ++h) {
      std::printf("  %7.2f", d.normalizer->denormalize(pred(i, h), 0));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_summary(const Args& args) {
  LoadedData d = load_and_normalize(require(args, "data"));
  RestoredModel r = restore(require(args, "ckpt"), d);
  std::printf("%s", core::model_summary(*r.model).c_str());
  return 0;
}

void usage() {
  std::printf(
      "rihgcn <command> [--flags]\n"
      "  generate --kind pems|stampede|airquality --out FILE\n"
      "           [--nodes N --days D --steps-per-day S --seed X]\n"
      "           [--missing R --missing-mode entry|reading|block]\n"
      "  info     --data FILE\n"
      "  train    --data FILE --out CKPT [--epochs E --lookback L --horizon H\n"
      "           --gcn-dim P --lstm-dim Q --graphs M --lambda L --cell lstm|gru\n"
      "           --threads T --quiet]\n"
      "           [--checkpoint FILE --checkpoint-every N --resume]\n"
      "           (durable training state; --resume continues a killed run\n"
      "            bitwise-identically given the same seed/batch/threads)\n"
      "  evaluate --data FILE --ckpt CKPT [--max-windows N]\n"
      "  forecast --data FILE --ckpt CKPT [--window T]\n"
      "  summary  --data FILE --ckpt CKPT\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "forecast") return cmd_forecast(args);
    if (cmd == "summary") return cmd_summary(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
