#!/usr/bin/env bash
# Build bench_micro (Release) and refresh BENCH_micro.json at the repo root —
# the machine-readable perf trajectory (SpMM-vs-dense Chebyshev propagation
# sweep + RIHGCN train-step dense/sparse comparison; see DESIGN.md §9).
#
# Usage: tools/run_bench.sh [extra bench_micro flags]
# The sweep always runs; the registered google-benchmark suites are skipped
# by default (pass --benchmark_filter=... to include some).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir=build-bench
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j --target bench_micro

"${build_dir}/bench/bench_micro" \
  --benchmark_filter='^$' \
  --json="${repo_root}/BENCH_micro.json" \
  "$@"
