#!/usr/bin/env bash
# Build the micro benches (Release) and refresh the machine-readable perf
# baselines at the repo root:
#   BENCH_micro.json — kernel/train-step trajectory (bench_micro; SpMM vs
#     dense Chebyshev, SIMD layer, DTW graph construction, train-step
#     configs; see DESIGN.md §9)
#   BENCH_serve.json — serving trajectory (bench_serve; engine-vs-tape
#     forward, ForecastServer QPS + latency percentiles; see DESIGN.md §14)
#
# Usage: tools/run_bench.sh [--micro|--serve] [extra bench flags]
# Default refreshes both. The registered google-benchmark suites of
# bench_micro are skipped by default (pass --benchmark_filter=... to include
# some).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

run_micro=1
run_serve=1
if [[ "${1:-}" == "--micro" ]]; then
  run_serve=0
  shift
elif [[ "${1:-}" == "--serve" ]]; then
  run_micro=0
  shift
fi

build_dir=build-bench
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j --target bench_micro bench_serve

if [[ "${run_micro}" == 1 ]]; then
  "${build_dir}/bench/bench_micro" \
    --benchmark_filter='^$' \
    --json="${repo_root}/BENCH_micro.json" \
    "$@"
fi
if [[ "${run_serve}" == 1 ]]; then
  "${build_dir}/bench/bench_serve" \
    --json="${repo_root}/BENCH_serve.json" \
    "$@"
fi
