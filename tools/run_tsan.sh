#!/usr/bin/env bash
# Build the test suite under ThreadSanitizer and run the parallel-backend
# and sparse-backend suites with a 4-thread pool. Catches data races in the
# ThreadPool, the threaded tensor kernels (dense and CSR SpMM), the tape's
# parallel backward loops, and the serving stack (EventLoop post/timer
# ordering, ForecastServer coalescing and the loop-owned snapshot swap under
# concurrent clients + a publishing retrainer — ServeSnapshot.SwapUnderLoad
# is the DESIGN.md §14 zero-pause-publish gate; the §15 fault-tolerance
# gates ride the same Serve* filter: ServeOverload.OverloadStorm* drives 4
# client threads against a slow, fault-injecting engine through bounded
# admission + deadlines + the circuit breaker, and
# ServeShutdown.RacyDrainNeverBreaksPromises races drain() against live
# clients — both must show zero races, zero broken promises, zero hangs).
# The §16 parallel-execution gates ride along too: ExecPool* exercises the
# worker pool's per-worker FIFO queues and drain-on-destruction, and
# ServePool.StormRacesWorkersBreakerPublishAndDrain races 3 pool workers
# against 4 clients, a poisoned publisher, the circuit breaker, and drain()
# with exact counter accounting.
#
# Usage: tools/run_tsan.sh [extra gtest filter]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir=build-tsan
cmake -B "${build_dir}" -S . -DRIHGCN_SANITIZE=thread >/dev/null
cmake --build "${build_dir}" -j --target rihgcn_tests

filter="${1:-KernelConformance*:ThreadPool*:MatmulParallel*:ParallelDeterminism*:*ParallelBackendGrad*:CsrStructure*:CsrSpmm*:*SparseAndDenseTraining*:TapeArena*:FusedCell*:NumericalGuard*:TrainCheckpoint*:FaultInjection*:OnlineRobust*:OnlineMemo*:RobustPrimitives*:Engine*:EventLoop*:Serve*:ExecPool*}"

# tools/tsan.supp: exception_ptr refcounts live in uninstrumented
# libstdc++.so; see the file for why that one frame is a false positive.
TSAN_OPTIONS="halt_on_error=1 suppressions=${repo_root}/tools/tsan.supp" \
RIHGCN_THREADS=4 \
  "${build_dir}/tests/rihgcn_tests" --gtest_filter="${filter}"
