#!/usr/bin/env bash
# Build the test suite under ThreadSanitizer and run the parallel-backend
# and sparse-backend suites with a 4-thread pool. Catches data races in the
# ThreadPool, the threaded tensor kernels (dense and CSR SpMM), the tape's
# parallel backward loops, and the serving stack (EventLoop post/timer
# ordering, ForecastServer coalescing and the loop-owned snapshot swap under
# concurrent clients + a publishing retrainer — ServeSnapshot.SwapUnderLoad
# is the DESIGN.md §14 zero-pause-publish gate).
#
# Usage: tools/run_tsan.sh [extra gtest filter]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir=build-tsan
cmake -B "${build_dir}" -S . -DRIHGCN_SANITIZE=thread >/dev/null
cmake --build "${build_dir}" -j --target rihgcn_tests

filter="${1:-KernelConformance*:ThreadPool*:MatmulParallel*:ParallelDeterminism*:*ParallelBackendGrad*:CsrStructure*:CsrSpmm*:*SparseAndDenseTraining*:TapeArena*:FusedCell*:NumericalGuard*:TrainCheckpoint*:FaultInjection*:OnlineRobust*:OnlineMemo*:Engine*:EventLoop*:Serve*}"

TSAN_OPTIONS="halt_on_error=1" \
RIHGCN_THREADS=4 \
  "${build_dir}/tests/rihgcn_tests" --gtest_filter="${filter}"
