#!/usr/bin/env bash
# Build the test suite under ThreadSanitizer and run the parallel-backend
# and sparse-backend suites with a 4-thread pool. Catches data races in the
# ThreadPool, the threaded tensor kernels (dense and CSR SpMM), and the
# tape's parallel backward loops.
#
# Usage: tools/run_tsan.sh [extra gtest filter]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir=build-tsan
cmake -B "${build_dir}" -S . -DRIHGCN_SANITIZE=thread >/dev/null
cmake --build "${build_dir}" -j --target rihgcn_tests

filter="${1:-KernelConformance*:ThreadPool*:MatmulParallel*:ParallelDeterminism*:*ParallelBackendGrad*:CsrStructure*:CsrSpmm*:*SparseAndDenseTraining*:TapeArena*:FusedCell*:NumericalGuard*:TrainCheckpoint*:FaultInjection*:OnlineRobust*}"

TSAN_OPTIONS="halt_on_error=1" \
RIHGCN_THREADS=4 \
  "${build_dir}/tests/rihgcn_tests" --gtest_filter="${filter}"
